open Mmt_frame
module Cursor = Mmt_wire.Cursor

(* Addresses ------------------------------------------------------------ *)

let test_mac_string_roundtrip () =
  let s = "02:aa:bb:cc:dd:ee" in
  Alcotest.(check string) "roundtrip" s (Addr.Mac.to_string (Addr.Mac.of_string s))

let test_mac_rejects_bad () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (match Addr.Mac.of_string bad with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "nope"; "00:11:22:33:44"; "00:11:22:33:44:GG"; "00:11:22:33:44:555" ]

let test_mac_broadcast () =
  Alcotest.(check bool) "broadcast" true (Addr.Mac.is_broadcast Addr.Mac.broadcast);
  Alcotest.(check string) "broadcast string" "ff:ff:ff:ff:ff:ff"
    (Addr.Mac.to_string Addr.Mac.broadcast)

let test_mac_masks_to_48_bits () =
  let m = Addr.Mac.of_int64 0xFFFF_0102_0304_0506L in
  Alcotest.(check int64) "48 bits" 0x0102_0304_0506L (Addr.Mac.to_int64 m)

let test_ip_string_roundtrip () =
  let s = "10.0.1.255" in
  Alcotest.(check string) "roundtrip" s (Addr.Ip.to_string (Addr.Ip.of_string s))

let test_ip_rejects_bad () =
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (match Addr.Ip.of_string bad with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "10.0.0"; "256.0.0.1"; "a.b.c.d"; "1.2.3.4.5" ]

let test_ip_any () =
  Alcotest.(check bool) "any" true (Addr.Ip.is_any Addr.Ip.any);
  Alcotest.(check bool) "not any" false (Addr.Ip.is_any (Addr.Ip.of_octets 1 2 3 4))

let test_ip_octets () =
  Alcotest.(check string) "octets" "192.168.1.2"
    (Addr.Ip.to_string (Addr.Ip.of_octets 192 168 1 2))

(* Ethernet ------------------------------------------------------------- *)

let eth_header =
  {
    Ethernet.dst = Addr.Mac.of_string "02:00:00:00:00:02";
    src = Addr.Mac.of_string "02:00:00:00:00:01";
    ethertype = Ethernet.ethertype_mmt;
  }

let test_ethernet_roundtrip () =
  let w = Cursor.Writer.create Ethernet.header_size in
  Ethernet.write w eth_header;
  let parsed = Ethernet.read (Cursor.Reader.of_bytes (Cursor.Writer.contents w)) in
  Alcotest.(check bool) "equal" true (Ethernet.equal eth_header parsed)

let test_ethernet_size () =
  let w = Cursor.Writer.create Ethernet.header_size in
  Ethernet.write w eth_header;
  Alcotest.(check int) "14 bytes" 14 (Cursor.Writer.length w)

let test_ethernet_truncated () =
  Alcotest.(check bool) "truncated raises" true
    (match Ethernet.read (Cursor.Reader.of_bytes (Bytes.create 8)) with
    | _ -> false
    | exception Cursor.Out_of_bounds _ -> true)

(* IPv4 ------------------------------------------------------------------ *)

let ip_header =
  {
    Ipv4.dscp = 10;
    ttl = 63;
    protocol = Ipv4.protocol_mmt;
    src = Addr.Ip.of_octets 10 0 1 1;
    dst = Addr.Ip.of_octets 10 0 3 1;
    payload_length = 1234;
  }

let test_ipv4_roundtrip () =
  let w = Cursor.Writer.create Ipv4.header_size in
  Ipv4.write w ip_header;
  let parsed = Ipv4.read (Cursor.Reader.of_bytes (Cursor.Writer.contents w)) in
  Alcotest.(check bool) "equal" true (Ipv4.equal ip_header parsed)

let test_ipv4_checksum_detects_corruption () =
  let w = Cursor.Writer.create Ipv4.header_size in
  Ipv4.write w ip_header;
  let raw = Cursor.Writer.contents w in
  Bytes.set raw 8 (Char.chr (Char.code (Bytes.get raw 8) lxor 0xFF));
  Alcotest.(check bool) "bad checksum rejected" true
    (match Ipv4.read (Cursor.Reader.of_bytes raw) with
    | _ -> false
    | exception Failure _ -> true)

let test_ipv4_df_set () =
  let w = Cursor.Writer.create Ipv4.header_size in
  Ipv4.write w ip_header;
  let raw = Cursor.Writer.contents w in
  Alcotest.(check int) "DF flag" 0x4000 (Bytes.get_uint16_be raw 6)

(* UDP ------------------------------------------------------------------- *)

let test_udp_roundtrip () =
  let header = { Udp.src_port = 4000; dst_port = 4001; payload_length = 512 } in
  let w = Cursor.Writer.create Udp.header_size in
  Udp.write w header;
  let parsed = Udp.read (Cursor.Reader.of_bytes (Cursor.Writer.contents w)) in
  Alcotest.(check bool) "equal" true (Udp.equal header parsed)

let qcheck_ip_roundtrip =
  QCheck.Test.make ~name:"ip int32 roundtrip" ~count:500 QCheck.int32 (fun raw ->
      Addr.Ip.to_int32 (Addr.Ip.of_int32 raw) = raw)

let qcheck_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 header roundtrip" ~count:300
    QCheck.(quad (int_range 0 63) (int_range 1 255) (int_range 0 65000) int32)
    (fun (dscp, ttl, payload_length, addr) ->
      let header =
        {
          Ipv4.dscp;
          ttl;
          protocol = Ipv4.protocol_mmt;
          src = Addr.Ip.of_int32 addr;
          dst = Addr.Ip.of_int32 (Int32.lognot addr);
          payload_length;
        }
      in
      let w = Cursor.Writer.create Ipv4.header_size in
      Ipv4.write w header;
      Ipv4.equal header (Ipv4.read (Cursor.Reader.of_bytes (Cursor.Writer.contents w))))

let suite =
  [
    Alcotest.test_case "mac string roundtrip" `Quick test_mac_string_roundtrip;
    Alcotest.test_case "mac rejects bad" `Quick test_mac_rejects_bad;
    Alcotest.test_case "mac broadcast" `Quick test_mac_broadcast;
    Alcotest.test_case "mac 48-bit mask" `Quick test_mac_masks_to_48_bits;
    Alcotest.test_case "ip string roundtrip" `Quick test_ip_string_roundtrip;
    Alcotest.test_case "ip rejects bad" `Quick test_ip_rejects_bad;
    Alcotest.test_case "ip any" `Quick test_ip_any;
    Alcotest.test_case "ip octets" `Quick test_ip_octets;
    Alcotest.test_case "ethernet roundtrip" `Quick test_ethernet_roundtrip;
    Alcotest.test_case "ethernet size" `Quick test_ethernet_size;
    Alcotest.test_case "ethernet truncated" `Quick test_ethernet_truncated;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 checksum detects corruption" `Quick
      test_ipv4_checksum_detects_corruption;
    Alcotest.test_case "ipv4 DF set" `Quick test_ipv4_df_set;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ip_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ipv4_roundtrip;
  ]
