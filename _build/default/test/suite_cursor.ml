module Cursor = Mmt_wire.Cursor

let test_roundtrip_all_widths () =
  let w = Cursor.Writer.create 64 in
  Cursor.Writer.u8 w 0xAB;
  Cursor.Writer.u16 w 0xCDEF;
  Cursor.Writer.u24 w 0x123456;
  Cursor.Writer.u32 w 0xDEADBEEFl;
  Cursor.Writer.u32_int w 0xFFFFFFFF;
  Cursor.Writer.u64 w 0x0123456789ABCDEFL;
  Cursor.Writer.bytes w (Bytes.of_string "hello");
  let r = Cursor.Reader.of_bytes (Cursor.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Cursor.Reader.u8 r);
  Alcotest.(check int) "u16" 0xCDEF (Cursor.Reader.u16 r);
  Alcotest.(check int) "u24" 0x123456 (Cursor.Reader.u24 r);
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Cursor.Reader.u32 r);
  Alcotest.(check int) "u32_int" 0xFFFFFFFF (Cursor.Reader.u32_int r);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Cursor.Reader.u64 r);
  Alcotest.(check string) "bytes" "hello" (Bytes.to_string (Cursor.Reader.rest r))

let test_big_endian_layout () =
  let w = Cursor.Writer.create 4 in
  Cursor.Writer.u32 w 0x01020304l;
  let raw = Cursor.Writer.contents w in
  Alcotest.(check int) "byte 0" 1 (Char.code (Bytes.get raw 0));
  Alcotest.(check int) "byte 3" 4 (Char.code (Bytes.get raw 3))

let test_truncation_wraps_values () =
  let w = Cursor.Writer.create 8 in
  Cursor.Writer.u8 w 0x1FF;
  Cursor.Writer.u16 w 0x1FFFF;
  Cursor.Writer.u24 w 0x1FFFFFF;
  let r = Cursor.Reader.of_bytes (Cursor.Writer.contents w) in
  Alcotest.(check int) "u8 wraps" 0xFF (Cursor.Reader.u8 r);
  Alcotest.(check int) "u16 wraps" 0xFFFF (Cursor.Reader.u16 r);
  Alcotest.(check int) "u24 wraps" 0xFFFFFF (Cursor.Reader.u24 r)

let test_reader_window () =
  let buf = Bytes.of_string "XXabcdYY" in
  let r = Cursor.Reader.of_bytes ~off:2 ~len:4 buf in
  Alcotest.(check int) "remaining" 4 (Cursor.Reader.remaining r);
  Alcotest.(check string) "window content" "abcd" (Bytes.to_string (Cursor.Reader.rest r));
  Alcotest.(check int) "position" 4 (Cursor.Reader.position r)

let test_reader_out_of_bounds () =
  let r = Cursor.Reader.of_bytes (Bytes.create 3) in
  Cursor.Reader.skip r 3;
  Alcotest.(check bool) "raises on empty read" true
    (match Cursor.Reader.u8 r with
    | _ -> false
    | exception Cursor.Out_of_bounds _ -> true)

let test_reader_bad_window () =
  Alcotest.(check bool) "bad window rejected" true
    (match Cursor.Reader.of_bytes ~off:2 ~len:10 (Bytes.create 4) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_writer_overflow () =
  let w = Cursor.Writer.create 2 in
  Cursor.Writer.u16 w 1;
  Alcotest.(check bool) "raises past capacity" true
    (match Cursor.Writer.u8 w 1 with
    | () -> false
    | exception Cursor.Out_of_bounds _ -> true)

let test_writer_length_tracks () =
  let w = Cursor.Writer.create 16 in
  Alcotest.(check int) "empty" 0 (Cursor.Writer.length w);
  Cursor.Writer.u24 w 7;
  Alcotest.(check int) "after u24" 3 (Cursor.Writer.length w)

let test_checksum_known_vector () =
  (* Classic RFC 1071 example: checksum of 0x0001 0xf203 0xf4f5 0xf6f7. *)
  let w = Cursor.Writer.create 8 in
  List.iter (Cursor.Writer.u16 w) [ 0x0001; 0xf203; 0xf4f5; 0xf6f7 ];
  let raw = Cursor.Writer.contents w in
  Alcotest.(check int) "checksum" 0x220d (Cursor.checksum raw ~off:0 ~len:8)

let test_checksum_odd_length () =
  let raw = Bytes.of_string "\x01\x02\x03" in
  let c = Cursor.checksum raw ~off:0 ~len:3 in
  (* sum = 0x0102 + 0x0300 = 0x0402 -> complement 0xFBFD *)
  Alcotest.(check int) "odd-length checksum" 0xFBFD c

let test_checksum_verifies_to_zero () =
  let w = Cursor.Writer.create 8 in
  List.iter (Cursor.Writer.u16 w) [ 0x1234; 0x0000; 0xABCD; 0x7fff ] ;
  let raw = Cursor.Writer.contents w in
  let c = Cursor.checksum raw ~off:0 ~len:8 in
  Bytes.set_uint16_be raw 2 c;
  Alcotest.(check int) "embeds to zero" 0 (Cursor.checksum raw ~off:0 ~len:8)

let qcheck_u64_roundtrip =
  QCheck.Test.make ~name:"u64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      let w = Cursor.Writer.create 8 in
      Cursor.Writer.u64 w v;
      Cursor.Reader.u64 (Cursor.Reader.of_bytes (Cursor.Writer.contents w)) = v)

let qcheck_checksum_zero_embed =
  QCheck.Test.make ~name:"embedded checksum verifies to zero" ~count:300
    QCheck.(list_of_size (Gen.int_range 4 64) (int_range 0 255))
    (fun byte_values ->
      let n = List.length byte_values in
      let buf = Bytes.create (n + 2) in
      List.iteri (fun i v -> Bytes.set buf (i + 2) (Char.chr v)) byte_values;
      Bytes.set_uint16_be buf 0 0;
      let c = Cursor.checksum buf ~off:0 ~len:(n + 2) in
      Bytes.set_uint16_be buf 0 c;
      Cursor.checksum buf ~off:0 ~len:(n + 2) = 0)

let suite =
  [
    Alcotest.test_case "roundtrip all widths" `Quick test_roundtrip_all_widths;
    Alcotest.test_case "big endian layout" `Quick test_big_endian_layout;
    Alcotest.test_case "value truncation" `Quick test_truncation_wraps_values;
    Alcotest.test_case "reader window" `Quick test_reader_window;
    Alcotest.test_case "reader out of bounds" `Quick test_reader_out_of_bounds;
    Alcotest.test_case "reader bad window" `Quick test_reader_bad_window;
    Alcotest.test_case "writer overflow" `Quick test_writer_overflow;
    Alcotest.test_case "writer length" `Quick test_writer_length_tracks;
    Alcotest.test_case "checksum known vector" `Quick test_checksum_known_vector;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "checksum self-verifies" `Quick test_checksum_verifies_to_zero;
    QCheck_alcotest.to_alcotest qcheck_u64_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_checksum_zero_embed;
  ]
