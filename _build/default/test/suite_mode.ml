(* Mode descriptions, legality rules, retransmission buffers. *)
open Mmt_util
open Mmt_frame

let buffer_ip = Addr.Ip.of_octets 10 0 1 1
let notify_ip = Addr.Ip.of_octets 10 0 0 1

let wan_mode =
  Mmt.Mode.make ~name:"wan" ~reliable:buffer_ip
    ~deadline_budget:(Units.Time.ms 20., notify_ip)
    ~age_budget_us:20_000 ()

let test_identification_mode_empty () =
  Alcotest.(check int) "no features" 0
    (Mmt.Feature.Set.cardinal Mmt.Mode.identification.Mmt.Mode.features);
  Alcotest.(check bool) "well-formed" true
    (Mmt.Mode.check Mmt.Mode.identification = Ok ())

let test_make_derives_features () =
  let open Mmt.Feature in
  let f = wan_mode.Mmt.Mode.features in
  Alcotest.(check bool) "sequenced" true (Set.mem Sequenced f);
  Alcotest.(check bool) "reliable" true (Set.mem Reliable f);
  Alcotest.(check bool) "timely" true (Set.mem Timely f);
  Alcotest.(check bool) "age" true (Set.mem Age_tracked f);
  Alcotest.(check bool) "no pace" false (Set.mem Paced f)

let test_check_passes_well_formed () =
  Alcotest.(check bool) "wan mode ok" true (Mmt.Mode.check wan_mode = Ok ())

let test_check_catches_inconsistency () =
  (* Hand-build an inconsistent mode: Reliable feature but no buffer. *)
  let broken =
    {
      wan_mode with
      Mmt.Mode.retransmit_from = None;
    }
  in
  Alcotest.(check bool) "inconsistent rejected" true
    (match Mmt.Mode.check broken with Error _ -> true | Ok _ -> false)

let test_transition_mode0_to_wan_legal () =
  Alcotest.(check bool) "activate features" true
    (Mmt.Mode.transition_legal ~from_mode:Mmt.Mode.identification ~to_mode:wan_mode
     = Ok ())

let test_transition_strip_all_legal () =
  Alcotest.(check bool) "leave recoverable region whole" true
    (Mmt.Mode.transition_legal ~from_mode:wan_mode ~to_mode:Mmt.Mode.identification
     = Ok ())

let test_transition_strip_reliable_keep_sequenced_illegal () =
  let seq_only =
    {
      Mmt.Mode.identification with
      Mmt.Mode.name = "seq-only";
      features = Mmt.Feature.Set.of_list [ Mmt.Feature.Sequenced ];
    }
  in
  Alcotest.(check bool) "stranding gaps rejected" true
    (match Mmt.Mode.transition_legal ~from_mode:wan_mode ~to_mode:seq_only with
    | Error _ -> true
    | Ok _ -> false)

let test_transition_reliable_without_sequenced_illegal () =
  let broken =
    {
      Mmt.Mode.identification with
      Mmt.Mode.name = "broken";
      features = Mmt.Feature.Set.of_list [ Mmt.Feature.Reliable ];
    }
  in
  Alcotest.(check bool) "rejected" true
    (match
       Mmt.Mode.transition_legal ~from_mode:Mmt.Mode.identification ~to_mode:broken
     with
    | Error _ -> true
    | Ok _ -> false)

(* Retransmission buffer ---------------------------------------------------- *)

let frame_of_size n = Bytes.make n 'x'

let test_retx_store_fetch () =
  let buffer = Mmt.Retx_buffer.create ~capacity:(Units.Size.kib 1) in
  Mmt.Retx_buffer.store buffer ~seq:1 ~born:(Units.Time.us 5.) (frame_of_size 100);
  (match Mmt.Retx_buffer.fetch buffer ~seq:1 with
  | Some entry ->
      Alcotest.(check int) "frame size" 100 (Bytes.length entry.Mmt.Retx_buffer.frame);
      Alcotest.(check bool) "born preserved" true
        (Units.Time.equal entry.Mmt.Retx_buffer.born (Units.Time.us 5.))
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss" true (Mmt.Retx_buffer.fetch buffer ~seq:2 = None);
  let stats = Mmt.Retx_buffer.stats buffer in
  Alcotest.(check int) "hits" 1 stats.Mmt.Retx_buffer.hits;
  Alcotest.(check int) "misses" 1 stats.Mmt.Retx_buffer.misses

let test_retx_eviction_oldest_first () =
  let buffer = Mmt.Retx_buffer.create ~capacity:(Units.Size.bytes 300) in
  for seq = 0 to 3 do
    Mmt.Retx_buffer.store buffer ~seq ~born:Units.Time.zero (frame_of_size 100)
  done;
  Alcotest.(check bool) "oldest evicted" false (Mmt.Retx_buffer.contains buffer ~seq:0);
  Alcotest.(check bool) "newest kept" true (Mmt.Retx_buffer.contains buffer ~seq:3);
  let stats = Mmt.Retx_buffer.stats buffer in
  Alcotest.(check int) "evicted" 1 stats.Mmt.Retx_buffer.evicted;
  Alcotest.(check int) "entries" 3 stats.Mmt.Retx_buffer.entries;
  Alcotest.(check int) "occupancy" 300
    (Units.Size.to_bytes stats.Mmt.Retx_buffer.occupancy)

let test_retx_overwrite_same_seq () =
  let buffer = Mmt.Retx_buffer.create ~capacity:(Units.Size.kib 1) in
  Mmt.Retx_buffer.store buffer ~seq:5 ~born:Units.Time.zero (frame_of_size 100);
  Mmt.Retx_buffer.store buffer ~seq:5 ~born:Units.Time.zero (frame_of_size 200);
  (match Mmt.Retx_buffer.fetch buffer ~seq:5 with
  | Some entry -> Alcotest.(check int) "latest wins" 200 (Bytes.length entry.Mmt.Retx_buffer.frame)
  | None -> Alcotest.fail "expected hit");
  let stats = Mmt.Retx_buffer.stats buffer in
  Alcotest.(check int) "occupancy after overwrite" 200
    (Units.Size.to_bytes stats.Mmt.Retx_buffer.occupancy)

let test_retx_oversized_frame_rejected () =
  let buffer = Mmt.Retx_buffer.create ~capacity:(Units.Size.bytes 50) in
  Mmt.Retx_buffer.store buffer ~seq:1 ~born:Units.Time.zero (frame_of_size 100);
  Alcotest.(check bool) "not stored" false (Mmt.Retx_buffer.contains buffer ~seq:1)

let qcheck_retx_capacity_invariant =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 1 400))
    (fun sizes ->
      let buffer = Mmt.Retx_buffer.create ~capacity:(Units.Size.bytes 1000) in
      List.iteri
        (fun seq size ->
          Mmt.Retx_buffer.store buffer ~seq ~born:Units.Time.zero (frame_of_size size))
        sizes;
      Units.Size.to_bytes (Mmt.Retx_buffer.stats buffer).Mmt.Retx_buffer.occupancy <= 1000)

let suite =
  [
    Alcotest.test_case "identification mode" `Quick test_identification_mode_empty;
    Alcotest.test_case "make derives features" `Quick test_make_derives_features;
    Alcotest.test_case "check well-formed" `Quick test_check_passes_well_formed;
    Alcotest.test_case "check inconsistency" `Quick test_check_catches_inconsistency;
    Alcotest.test_case "transition activate" `Quick test_transition_mode0_to_wan_legal;
    Alcotest.test_case "transition strip all" `Quick test_transition_strip_all_legal;
    Alcotest.test_case "transition strand gaps" `Quick
      test_transition_strip_reliable_keep_sequenced_illegal;
    Alcotest.test_case "reliable needs sequenced" `Quick
      test_transition_reliable_without_sequenced_illegal;
    Alcotest.test_case "retx store/fetch" `Quick test_retx_store_fetch;
    Alcotest.test_case "retx eviction" `Quick test_retx_eviction_oldest_first;
    Alcotest.test_case "retx overwrite" `Quick test_retx_overwrite_same_seq;
    Alcotest.test_case "retx oversized" `Quick test_retx_oversized_frame_rejected;
    QCheck_alcotest.to_alcotest qcheck_retx_capacity_invariant;
  ]
