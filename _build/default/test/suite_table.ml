open Mmt_util

let test_render_alignment () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] ()
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "23456" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header contains name" true
        (String.length header > 0)
  | [] -> Alcotest.fail "no output");
  (* all data lines are the same width *)
  let widths =
    List.filter_map
      (fun line -> if line = "" then None else Some (String.length line))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines")

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_right_alignment_pads_left () =
  let t = Table.create ~columns:[ ("v", Table.Right) ] () in
  Table.add_row t [ "7" ];
  Table.add_row t [ "1234" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "right aligned" true
    (contains_substring rendered "|    7 |")

let test_title () =
  let t = Table.create ~title:"My Table" ~columns:[ ("a", Table.Left) ] () in
  Table.add_row t [ "x" ];
  Alcotest.(check bool) "title present" true
    (String.length (Table.render t) > String.length "My Table")

let test_separator () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] () in
  Table.add_row t [ "x" ];
  Table.add_separator t;
  Table.add_row t [ "y" ];
  let dashes =
    String.split_on_char '\n' (Table.render t)
    |> List.filter (fun line -> String.contains line '-')
  in
  Alcotest.(check int) "two rules (header + separator)" 2 (List.length dashes)

let test_arity_check () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] () in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only one" ])

let test_empty_columns_rejected () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Table.create ~columns:[] ()))

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "right alignment" `Quick test_right_alignment_pads_left;
    Alcotest.test_case "title" `Quick test_title;
    Alcotest.test_case "separator" `Quick test_separator;
    Alcotest.test_case "arity check" `Quick test_arity_check;
    Alcotest.test_case "empty columns rejected" `Quick test_empty_columns_rejected;
  ]
