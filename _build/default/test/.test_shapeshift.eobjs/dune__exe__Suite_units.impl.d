test/suite_units.ml: Alcotest Float Mmt_util QCheck QCheck_alcotest Units
