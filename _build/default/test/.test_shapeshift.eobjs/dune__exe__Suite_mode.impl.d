test/suite_mode.ml: Addr Alcotest Bytes Gen List Mmt Mmt_frame Mmt_util QCheck QCheck_alcotest Set Units
