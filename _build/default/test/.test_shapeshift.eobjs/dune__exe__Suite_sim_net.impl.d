test/suite_sim_net.ml: Alcotest Bytes Float Fun List Mmt_sim Mmt_util Rng Units
