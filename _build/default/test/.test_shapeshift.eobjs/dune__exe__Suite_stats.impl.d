test/suite_stats.ml: Alcotest Float Gen List Mmt_util QCheck QCheck_alcotest Stats String
