test/suite_daq.ml: Alcotest Array Bytes Float Int64 List Mmt Mmt_daq Mmt_sim Mmt_util Option Rng Stats Units
