test/suite_experiments.ml: Alcotest List Mmt_experiments String
