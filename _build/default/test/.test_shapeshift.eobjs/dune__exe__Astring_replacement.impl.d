test/astring_replacement.ml: String
