test/suite_control.ml: Addr Alcotest Bytes Ethernet Gen Ipv4 List Mmt Mmt_frame Mmt_util Mmt_wire QCheck QCheck_alcotest Units
