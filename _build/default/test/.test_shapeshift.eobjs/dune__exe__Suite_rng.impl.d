test/suite_rng.ml: Alcotest Array Float Fun List Mmt_util QCheck QCheck_alcotest Rng Stats
