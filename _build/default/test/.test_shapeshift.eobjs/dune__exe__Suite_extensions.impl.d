test/suite_extensions.ml: Addr Alcotest Bytes Char Gen Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_pilot Mmt_runtime Mmt_sim Mmt_util QCheck QCheck_alcotest Queue Result Units
