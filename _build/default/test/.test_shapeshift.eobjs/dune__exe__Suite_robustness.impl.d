test/suite_robustness.ml: Addr Alcotest Bytes Int64 List Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_pilot Mmt_sim Mmt_util Option Printf QCheck QCheck_alcotest Rng String Units
