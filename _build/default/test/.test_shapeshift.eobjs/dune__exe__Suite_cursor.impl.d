test/suite_cursor.ml: Alcotest Bytes Char Gen List Mmt_wire QCheck QCheck_alcotest
