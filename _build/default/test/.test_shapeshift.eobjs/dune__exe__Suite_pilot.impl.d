test/suite_pilot.ml: Alcotest Astring_replacement Float List Mmt Mmt_daq Mmt_innet Mmt_pilot Mmt_sim Mmt_tcp Mmt_telemetry Mmt_util Option String Units
