test/suite_tcp.ml: Alcotest Array Bytes List Mmt Mmt_frame Mmt_sim Mmt_tcp Mmt_util Rng Units
