test/suite_header.ml: Addr Alcotest Bytes Kind List Mmt Mmt_frame Mmt_util Option QCheck QCheck_alcotest Set Units
