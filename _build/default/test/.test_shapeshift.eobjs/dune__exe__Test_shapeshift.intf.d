test/test_shapeshift.mli:
