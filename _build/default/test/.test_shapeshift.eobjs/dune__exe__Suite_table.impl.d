test/suite_table.ml: Alcotest List Mmt_util String Table
