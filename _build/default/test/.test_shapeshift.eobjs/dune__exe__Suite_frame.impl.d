test/suite_frame.ml: Addr Alcotest Bytes Char Ethernet Int32 Ipv4 List Mmt_frame Mmt_wire QCheck QCheck_alcotest Udp
