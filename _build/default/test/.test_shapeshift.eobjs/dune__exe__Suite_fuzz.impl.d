test/suite_fuzz.ml: Bytes Char List Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_runtime Mmt_sim Mmt_tcp Mmt_util QCheck QCheck_alcotest
