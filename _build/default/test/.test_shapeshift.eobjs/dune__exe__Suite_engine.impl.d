test/suite_engine.ml: Alcotest Gen List Mmt_sim Mmt_util QCheck QCheck_alcotest Rng Units
