test/suite_innet.ml: Addr Alcotest Bytes List Mmt Mmt_frame Mmt_innet Mmt_runtime Mmt_sim Mmt_util Option Queue Units
