test/suite_endpoint.ml: Addr Alcotest Bytes Float List Mmt Mmt_frame Mmt_runtime Mmt_sim Mmt_util Printf Queue Units
