(* Failure injection and observability: packet tracing, burst loss,
   undersized buffers, encrypted payloads through the full element
   path. *)
open Mmt_util
open Mmt_frame

(* Tracing -------------------------------------------------------------- *)

let test_trace_records_link_events () =
  let engine = Mmt_sim.Engine.create () in
  let trace = Mmt_sim.Trace.create () in
  let topo = Mmt_sim.Topology.create ~engine ~trace () in
  let a = Mmt_sim.Topology.add_node topo ~name:"a" in
  let b = Mmt_sim.Topology.add_node topo ~name:"b" in
  let rng = Rng.create ~seed:3L in
  let link =
    Mmt_sim.Topology.connect topo ~src:a ~dst:b ~rate:(Units.Rate.gbps 1.)
      ~propagation:(Units.Time.us 5.)
      ~loss:(Mmt_sim.Loss.bernoulli ~drop:0.2 ~corrupt:0.1 ~rng)
      ()
  in
  for i = 0 to 199 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale (Units.Time.us 10.) (float_of_int i))
         (fun () ->
           Mmt_sim.Link.send link
             (Mmt_sim.Packet.create ~id:i ~born:(Mmt_sim.Engine.now engine)
                (Bytes.create 100))))
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt_sim.Link.stats link in
  Alcotest.(check int) "sent = offered" stats.Mmt_sim.Link.offered
    (Mmt_sim.Trace.count trace Mmt_sim.Link.Sent);
  Alcotest.(check int) "delivered match" stats.Mmt_sim.Link.delivered
    (Mmt_sim.Trace.count trace Mmt_sim.Link.Delivered);
  Alcotest.(check int) "loss drops match" stats.Mmt_sim.Link.loss_drops
    (Mmt_sim.Trace.count trace Mmt_sim.Link.Loss_dropped);
  Alcotest.(check int) "corrupted match" stats.Mmt_sim.Link.corrupted
    (Mmt_sim.Trace.count trace Mmt_sim.Link.Corrupted);
  (* Per-packet journey: a delivered packet has Sent -> Transmitted ->
     Delivered in order. *)
  let delivered_id =
    List.find_map
      (fun (e : Mmt_sim.Trace.entry) ->
        if e.Mmt_sim.Trace.event = Mmt_sim.Link.Delivered then
          Some e.Mmt_sim.Trace.packet_id
        else None)
      (Mmt_sim.Trace.entries trace)
  in
  (match delivered_id with
  | Some id -> (
      let history = Mmt_sim.Trace.packet_history trace ~packet_id:id in
      match List.map (fun (e : Mmt_sim.Trace.entry) -> e.Mmt_sim.Trace.event) history with
      | [ Mmt_sim.Link.Sent; Mmt_sim.Link.Transmitted; Mmt_sim.Link.Delivered ] -> ()
      | [ Mmt_sim.Link.Sent; Mmt_sim.Link.Transmitted; Mmt_sim.Link.Corrupted;
          Mmt_sim.Link.Delivered ] -> ()
      | other ->
          Alcotest.fail
            (Printf.sprintf "unexpected journey of %d events" (List.length other)))
  | None -> Alcotest.fail "expected at least one delivery");
  Alcotest.(check bool) "render has lines" true
    (String.length (Mmt_sim.Trace.render ~limit:5 trace) > 0)

let test_trace_capacity_truncation () =
  let trace = Mmt_sim.Trace.create ~capacity:10 () in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Bytes.create 4) in
  for i = 0 to 24 do
    Mmt_sim.Trace.record trace
      ~at:(Units.Time.of_int_ns i)
      ~link:"x" Mmt_sim.Link.Sent packet
  done;
  Alcotest.(check int) "bounded" 10 (List.length (Mmt_sim.Trace.entries trace));
  Alcotest.(check int) "truncated counted" 15 (Mmt_sim.Trace.truncated trace)

(* Burst loss ------------------------------------------------------------- *)

let test_burst_loss_recovered () =
  let outcome =
    Mmt_pilot.Runners.Placement_run.run
      (Mmt_pilot.Runners.Placement_run.params ~loss:0.01 ~bursty:true
         ~fragment_count:5000 ~seed:29L ())
  in
  Alcotest.(check bool) "bursts actually happened" true
    (outcome.Mmt_pilot.Runners.Placement_run.recovered > 5);
  Alcotest.(check int) "complete despite bursts" 5000
    outcome.Mmt_pilot.Runners.Placement_run.delivered;
  Alcotest.(check int) "nothing abandoned" 0
    outcome.Mmt_pilot.Runners.Placement_run.lost

(* Undersized retransmission buffer ------------------------------------------ *)

let test_tiny_buffer_accounts_losses () =
  (* A 32 KiB buffer holds only ~4 frames of 7200 B: most NAKed
     sequences were evicted long before the NAK arrives.  Conservation
     must still hold: every fragment is delivered or accounted lost. *)
  let outcome =
    Mmt_pilot.Runners.Placement_run.run
      (Mmt_pilot.Runners.Placement_run.params ~loss:0.01
         ~buffer_capacity:(Units.Size.kib 32) ~fragment_count:3000 ~seed:41L ())
  in
  let r = outcome.Mmt_pilot.Runners.Placement_run.receiver in
  Alcotest.(check bool) "some losses became permanent" true
    (outcome.Mmt_pilot.Runners.Placement_run.lost > 0);
  Alcotest.(check int) "conservation" 3000
    (outcome.Mmt_pilot.Runners.Placement_run.delivered
    + outcome.Mmt_pilot.Runners.Placement_run.lost);
  Alcotest.(check int) "no limbo" 0 r.Mmt.Receiver.still_missing

(* Encrypted payloads through the element path -------------------------------- *)

let test_encrypted_payloads_cross_elements () =
  (* Req 5: payloads are opaque ciphertext; headers stay processable.
     Sender encrypts each fragment; the rewriter sequences it and the
     age tracker touches it in flight; the receiver decrypts and
     verifies content integrity end to end. *)
  let key = Mmt.Payload_crypto.key_of_string "pilot secret" in
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let src = Mmt_sim.Topology.add_node topo ~name:"src" in
  let mid = Mmt_sim.Topology.add_node topo ~name:"mid" in
  let dst = Mmt_sim.Topology.add_node topo ~name:"dst" in
  let src_ip = Addr.Ip.of_octets 10 4 0 1 in
  let mid_ip = Addr.Ip.of_octets 10 4 0 2 in
  let dst_ip = Addr.Ip.of_octets 10 4 0 3 in
  let rate = Units.Rate.gbps 10. in
  let src_to_mid =
    Mmt_sim.Topology.connect topo ~src ~dst:mid ~rate ~propagation:(Units.Time.us 50.) ()
  in
  let mid_to_dst =
    Mmt_sim.Topology.connect topo ~src:mid ~dst ~rate ~propagation:(Units.Time.us 50.) ()
  in
  let router_mid = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send mid_to_dst) () in
  let env_mid = Mmt_pilot.Router.env router_mid ~engine ~fresh_id ~local_ip:mid_ip in
  ignore env_mid;
  let mode =
    Mmt.Mode.make ~name:"enc/wan" ~reliable:mid_ip ~age_budget_us:10_000 ()
  in
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode () in
  let age_tracker = Mmt_innet.Age_tracker.create () in
  let _switch =
    Mmt_innet.Switch.attach ~engine ~node:mid ~profile:Mmt_innet.Switch.tofino2
      ~elements:
        [ Mmt_innet.Mode_rewriter.element rewriter;
          Mmt_innet.Age_tracker.element age_tracker ]
      ~route:(fun _ -> Some (Mmt_sim.Link.send mid_to_dst))
      ()
  in
  let experiment = Mmt.Experiment_id.make ~experiment:4 ~slice:0 in
  let router_src = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send src_to_mid) () in
  let env_src = Mmt_pilot.Router.env router_src ~engine ~fresh_id ~local_ip:src_ip in
  let sender =
    Mmt.Sender.create ~env:env_src
      {
        Mmt.Sender.experiment;
        destination = dst_ip;
        encap = Mmt.Encap.Raw;
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let decrypted = ref [] in
  let env_dst =
    Mmt_pilot.Router.env (Mmt_pilot.Router.create ~default:ignore ()) ~engine ~fresh_id
      ~local_ip:dst_ip
  in
  let receiver =
    Mmt.Receiver.create ~env:env_dst
      {
        Mmt.Receiver.experiment;
        nak_delay = Units.Time.ms 1.;
        nak_retry_timeout = Units.Time.ms 10.;
        max_nak_retries = 3;
        expected_total = Some 50;
      }
      ~deliver:(fun (meta : Mmt.Receiver.meta) payload ->
        let nonce =
          Int64.of_int (Option.value ~default:0 meta.Mmt.Receiver.header.Mmt.Header.sequence)
        in
        match Mmt.Payload_crypto.decrypt key ~nonce payload with
        | Ok plaintext -> decrypted := Bytes.to_string plaintext :: !decrypted
        | Error e -> Alcotest.fail ("decrypt: " ^ e))
  in
  Mmt_sim.Node.set_handler dst (Mmt.Receiver.on_packet receiver);
  (* The sequence is assigned in-network, so the nonce must be known to
     both ends: sender counts messages the same way the rewriter's
     register does. *)
  for i = 0 to 49 do
    let plaintext = Printf.sprintf "reading-%04d" i in
    let ciphertext =
      Mmt.Payload_crypto.encrypt key ~nonce:(Int64.of_int i) (Bytes.of_string plaintext)
    in
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale (Units.Time.us 20.) (float_of_int i))
         (fun () -> Mmt.Sender.send sender ciphertext))
  done;
  Mmt_sim.Engine.run engine;
  Alcotest.(check int) "all decrypted" 50 (List.length !decrypted);
  Alcotest.(check bool) "content intact" true
    (List.mem "reading-0007" !decrypted);
  Alcotest.(check int) "age tracked despite opaque payload" 50
    (Mmt_innet.Age_tracker.stats age_tracker).Mmt_innet.Age_tracker.touched

(* Conservation across random seeds ------------------------------------------- *)

let qcheck_pilot_conservation =
  QCheck.Test.make ~name:"pilot conserves fragments across seeds" ~count:6
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let config =
        {
          Mmt_pilot.Pilot.default_config with
          Mmt_pilot.Pilot.fragment_count = 200;
          wan_loss = 0.01;
          wan_corrupt = 0.002;
          payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 512);
          seed = Int64.of_int seed;
        }
      in
      let pilot = Mmt_pilot.Pilot.build config in
      Mmt_pilot.Pilot.run pilot;
      let r = (Mmt_pilot.Pilot.results pilot).Mmt_pilot.Pilot.receiver in
      r.Mmt.Receiver.delivered + r.Mmt.Receiver.lost = 200
      && r.Mmt.Receiver.still_missing = 0
      && r.Mmt.Receiver.duplicates = 0)

let suite =
  [
    Alcotest.test_case "trace records link events" `Quick test_trace_records_link_events;
    Alcotest.test_case "trace truncation" `Quick test_trace_capacity_truncation;
    Alcotest.test_case "burst loss recovered" `Slow test_burst_loss_recovered;
    Alcotest.test_case "tiny buffer accounting" `Slow test_tiny_buffer_accounts_losses;
    Alcotest.test_case "encrypted payloads cross elements" `Quick
      test_encrypted_payloads_cross_elements;
    QCheck_alcotest.to_alcotest qcheck_pilot_conservation;
  ]
