open Mmt_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_welford_basic () =
  let acc = Stats.Welford.create () in
  List.iter (Stats.Welford.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Welford.count acc);
  Alcotest.(check bool) "mean" true (feq (Stats.Welford.mean acc) 5.);
  (* sample variance of that classic set is 32/7 *)
  Alcotest.(check bool) "variance" true
    (feq (Stats.Welford.variance acc) (32. /. 7.));
  Alcotest.(check bool) "min" true (feq (Stats.Welford.min acc) 2.);
  Alcotest.(check bool) "max" true (feq (Stats.Welford.max acc) 9.);
  Alcotest.(check bool) "sum" true (feq (Stats.Welford.sum acc) 40.)

let test_welford_empty () =
  let acc = Stats.Welford.create () in
  Alcotest.(check int) "count" 0 (Stats.Welford.count acc);
  Alcotest.(check bool) "mean 0" true (feq (Stats.Welford.mean acc) 0.);
  Alcotest.(check bool) "variance 0" true (feq (Stats.Welford.variance acc) 0.)

let test_welford_single () =
  let acc = Stats.Welford.create () in
  Stats.Welford.add acc 42.;
  Alcotest.(check bool) "variance of 1 sample" true
    (feq (Stats.Welford.variance acc) 0.)

let test_welford_merge () =
  let a = Stats.Welford.create () in
  let b = Stats.Welford.create () in
  let whole = Stats.Welford.create () in
  let values = List.init 100 (fun i -> float_of_int (i * i) /. 7.) in
  List.iteri
    (fun i v ->
      Stats.Welford.add whole v;
      if i mod 2 = 0 then Stats.Welford.add a v else Stats.Welford.add b v)
    values;
  let merged = Stats.Welford.merge a b in
  Alcotest.(check int) "count" (Stats.Welford.count whole) (Stats.Welford.count merged);
  Alcotest.(check bool) "mean" true
    (feq ~eps:1e-6 (Stats.Welford.mean whole) (Stats.Welford.mean merged));
  Alcotest.(check bool) "variance" true
    (feq ~eps:1e-4 (Stats.Welford.variance whole) (Stats.Welford.variance merged))

let test_welford_merge_empty () =
  let a = Stats.Welford.create () in
  Stats.Welford.add a 3.;
  let empty = Stats.Welford.create () in
  Alcotest.(check bool) "merge with empty keeps mean" true
    (feq (Stats.Welford.mean (Stats.Welford.merge a empty)) 3.);
  Alcotest.(check bool) "merge from empty keeps mean" true
    (feq (Stats.Welford.mean (Stats.Welford.merge empty a)) 3.)

let test_summary_quantiles () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check bool) "min" true (feq (Stats.Summary.min s) 1.);
  Alcotest.(check bool) "max" true (feq (Stats.Summary.max s) 5.);
  Alcotest.(check bool) "median" true (feq (Stats.Summary.median s) 3.);
  Alcotest.(check bool) "q0" true (feq (Stats.Summary.quantile s 0.) 1.);
  Alcotest.(check bool) "q1" true (feq (Stats.Summary.quantile s 1.) 5.);
  Alcotest.(check bool) "interpolated q" true
    (feq (Stats.Summary.quantile s 0.25) 2.)

let test_summary_interleaved_add_and_query () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 10.;
  Alcotest.(check bool) "median of one" true (feq (Stats.Summary.median s) 10.);
  Stats.Summary.add s 0.;
  Alcotest.(check bool) "median of two" true (feq (Stats.Summary.median s) 5.);
  Stats.Summary.add s 20.;
  Alcotest.(check bool) "median of three" true (feq (Stats.Summary.median s) 10.)

let test_summary_empty_nan () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "median of empty is nan" true
    (Float.is_nan (Stats.Summary.median s))

let test_summary_rejects_bad_q () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 1.;
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.Summary.quantile") (fun () ->
      ignore (Stats.Summary.quantile s 1.5))

let test_summary_growth () =
  let s = Stats.Summary.create () in
  for i = 1 to 10_000 do
    Stats.Summary.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 10_000 (Stats.Summary.count s);
  Alcotest.(check bool) "mean" true (feq (Stats.Summary.mean s) 5000.5);
  Alcotest.(check bool) "p99" true
    (Float.abs (Stats.Summary.quantile s 0.99 -. 9900.) < 2.)

let test_histogram_buckets () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.9; 9.99; -1.; 10.; 100. ];
  Alcotest.(check int) "count includes outliers" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "bucket 0" 1 (Stats.Histogram.bucket_value h 0);
  Alcotest.(check int) "bucket 1" 2 (Stats.Histogram.bucket_value h 1);
  Alcotest.(check int) "bucket 9" 1 (Stats.Histogram.bucket_value h 9);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  let lo, hi = Stats.Histogram.bucket_bounds h 3 in
  Alcotest.(check bool) "bounds" true (feq lo 3. && feq hi 4.)

let test_histogram_render () =
  let h = Stats.Histogram.create ~lo:0. ~hi:2. ~buckets:2 in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h 1.5;
  Stats.Histogram.add h 1.6;
  let rendered = Stats.Histogram.render h ~width:10 in
  Alcotest.(check bool) "has bars" true (String.contains rendered '#')

let test_histogram_rejects_bad_shape () =
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Stats.Histogram.create: hi <= lo") (fun () ->
      ignore (Stats.Histogram.create ~lo:1. ~hi:1. ~buckets:4))

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "drops";
  Stats.Counter.incr c "drops";
  Stats.Counter.incr ~by:5 c "sends";
  Alcotest.(check int) "drops" 2 (Stats.Counter.get c "drops");
  Alcotest.(check int) "sends" 5 (Stats.Counter.get c "sends");
  Alcotest.(check int) "unknown" 0 (Stats.Counter.get c "nothing");
  Alcotest.(check (list (pair string int)))
    "sorted list"
    [ ("drops", 2); ("sends", 5) ]
    (Stats.Counter.to_list c)

let qcheck_summary_quantile_monotone =
  QCheck.Test.make ~name:"quantiles are monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun values ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) values;
      let qs = [ 0.; 0.25; 0.5; 0.75; 1. ] in
      let results = List.map (Stats.Summary.quantile s) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone results)

let qcheck_welford_mean_matches =
  QCheck.Test.make ~name:"welford mean matches naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun values ->
      let acc = Stats.Welford.create () in
      List.iter (Stats.Welford.add acc) values;
      let naive = List.fold_left ( +. ) 0. values /. float_of_int (List.length values) in
      Float.abs (Stats.Welford.mean acc -. naive) < 1e-3)

let suite =
  [
    Alcotest.test_case "welford basic" `Quick test_welford_basic;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford single" `Quick test_welford_single;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "welford merge empty" `Quick test_welford_merge_empty;
    Alcotest.test_case "summary quantiles" `Quick test_summary_quantiles;
    Alcotest.test_case "summary interleaved" `Quick test_summary_interleaved_add_and_query;
    Alcotest.test_case "summary empty nan" `Quick test_summary_empty_nan;
    Alcotest.test_case "summary bad q" `Quick test_summary_rejects_bad_q;
    Alcotest.test_case "summary growth" `Quick test_summary_growth;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "histogram bad shape" `Quick test_histogram_rejects_bad_shape;
    Alcotest.test_case "counter" `Quick test_counter;
    QCheck_alcotest.to_alcotest qcheck_summary_quantile_monotone;
    QCheck_alcotest.to_alcotest qcheck_welford_mean_matches;
  ]
