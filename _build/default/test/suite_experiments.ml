(* The experiment registry and the fast reproductions. *)

let test_registry_ids_unique () =
  let ids =
    List.map
      (fun (e : Mmt_experiments.Registry.entry) -> e.Mmt_experiments.Registry.id)
      Mmt_experiments.Registry.all
  in
  Alcotest.(check int) "unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_find_variants () =
  List.iter
    (fun query ->
      match Mmt_experiments.Registry.find query with
      | Some entry ->
          Alcotest.(check string) ("found " ^ query) "E-F3"
            entry.Mmt_experiments.Registry.id
      | None -> Alcotest.fail ("lookup failed for " ^ query))
    [ "E-F3"; "e-f3"; "F3"; "f3" ];
  Alcotest.(check bool) "unknown id" true
    (Mmt_experiments.Registry.find "E-Z9" = None)

let test_registry_covers_paper () =
  (* Every table/figure of the paper has an entry: T1, F1-F4. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (Mmt_experiments.Registry.find id <> None))
    [ "E-T1"; "E-F1"; "E-F2"; "E-F3"; "E-F4" ]

let test_table1_passes () =
  let output, ok = Mmt_experiments.Table1.run () in
  Alcotest.(check bool) "non-empty output" true (String.length output > 100);
  Alcotest.(check bool) "all shape checks pass" true ok

let suite =
  [
    Alcotest.test_case "registry ids unique" `Quick test_registry_ids_unique;
    Alcotest.test_case "registry find variants" `Quick test_registry_find_variants;
    Alcotest.test_case "registry covers the paper" `Quick test_registry_covers_paper;
    Alcotest.test_case "table1 reproduction passes" `Slow test_table1_passes;
  ]
