(* Extensions: payload crypto (Req 5), control plane + planner (§ 6.1),
   payload processing discipline (§ 6.2), dynamic mode reconfiguration
   and the failover integration. *)
open Mmt_util
open Mmt_frame

(* Payload crypto ---------------------------------------------------------- *)

let key = Mmt.Payload_crypto.key_of_string "correct horse battery staple"

let test_crypto_roundtrip () =
  let plaintext = Bytes.of_string "neutrino interactions are shy" in
  let ciphertext = Mmt.Payload_crypto.encrypt key ~nonce:42L plaintext in
  Alcotest.(check int) "overhead" (Bytes.length plaintext + Mmt.Payload_crypto.overhead)
    (Bytes.length ciphertext);
  Alcotest.(check bool) "ciphertext differs" false
    (Bytes.equal (Bytes.sub ciphertext 0 (Bytes.length plaintext)) plaintext);
  match Mmt.Payload_crypto.decrypt key ~nonce:42L ciphertext with
  | Ok decrypted -> Alcotest.(check bool) "roundtrip" true (Bytes.equal decrypted plaintext)
  | Error e -> Alcotest.fail e

let test_crypto_wrong_key () =
  let ciphertext = Mmt.Payload_crypto.encrypt key ~nonce:1L (Bytes.of_string "secret") in
  let other = Mmt.Payload_crypto.key_of_string "wrong passphrase" in
  Alcotest.(check bool) "wrong key rejected" true
    (Result.is_error (Mmt.Payload_crypto.decrypt other ~nonce:1L ciphertext))

let test_crypto_wrong_nonce () =
  let ciphertext = Mmt.Payload_crypto.encrypt key ~nonce:1L (Bytes.of_string "secret") in
  Alcotest.(check bool) "nonce binding" true
    (Result.is_error (Mmt.Payload_crypto.decrypt key ~nonce:2L ciphertext))

let test_crypto_detects_corruption () =
  let ciphertext = Mmt.Payload_crypto.encrypt key ~nonce:1L (Bytes.of_string "secret!") in
  Bytes.set ciphertext 3 (Char.chr (Char.code (Bytes.get ciphertext 3) lxor 0x40));
  Alcotest.(check bool) "bit flip detected" true
    (Result.is_error (Mmt.Payload_crypto.decrypt key ~nonce:1L ciphertext));
  Alcotest.(check bool) "truncation detected" true
    (Result.is_error (Mmt.Payload_crypto.decrypt key ~nonce:1L (Bytes.create 3)))

let test_crypto_empty_payload () =
  let ciphertext = Mmt.Payload_crypto.encrypt key ~nonce:9L Bytes.empty in
  match Mmt.Payload_crypto.decrypt key ~nonce:9L ciphertext with
  | Ok decrypted -> Alcotest.(check int) "empty" 0 (Bytes.length decrypted)
  | Error e -> Alcotest.fail e

let qcheck_crypto_roundtrip =
  QCheck.Test.make ~name:"encrypt/decrypt roundtrip" ~count:200
    QCheck.(pair int64 (string_of_size (Gen.int_range 0 300)))
    (fun (nonce, s) ->
      let plaintext = Bytes.of_string s in
      match
        Mmt.Payload_crypto.decrypt key ~nonce
          (Mmt.Payload_crypto.encrypt key ~nonce plaintext)
      with
      | Ok decrypted -> Bytes.equal decrypted plaintext
      | Error _ -> false)

(* Control plane + planner -------------------------------------------------- *)

let buffer_a_ip = Addr.Ip.of_octets 10 0 1 1
let buffer_b_ip = Addr.Ip.of_octets 10 0 1 2

let advert ip rtt_ms =
  {
    Mmt.Control.Buffer_advert.buffer = ip;
    capacity = Units.Size.mib 64;
    rtt_hint = Units.Time.ms rtt_ms;
  }

let test_control_plane_advertises () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let cp =
    Mmt_innet.Control_plane.create ~env ~period:(Units.Time.ms 10.)
      ~peers:[ Addr.Ip.of_octets 10 0 9 9 ] ()
  in
  Mmt_innet.Control_plane.add_local cp (fun () -> Some (advert buffer_a_ip 2.));
  Mmt_innet.Control_plane.start cp;
  Mmt_sim.Engine.run ~until:(Units.Time.ms 35.) engine;
  Mmt_innet.Control_plane.stop cp;
  Mmt_sim.Engine.run engine;
  (* Rounds at 0, 10, 20, 30 ms = 4 adverts to one peer. *)
  Alcotest.(check int) "adverts on the wire" 4 (Queue.length queue);
  Alcotest.(check int) "stats" 4
    (Mmt_innet.Control_plane.stats cp).Mmt_innet.Control_plane.adverts_sent;
  Alcotest.(check bool) "own map knows the buffer" true
    (Mmt_innet.Control_plane.best_buffer cp = Some buffer_a_ip)

let test_control_plane_withdraw_expires () =
  let engine = Mmt_sim.Engine.create () in
  let env, _queue = Mmt_runtime.Env.loopback engine in
  let cp = Mmt_innet.Control_plane.create ~env ~period:(Units.Time.ms 10.) ~peers:[] () in
  let alive = ref true in
  Mmt_innet.Control_plane.add_local cp (fun () ->
      if !alive then Some (advert buffer_a_ip 2.) else None);
  Mmt_innet.Control_plane.start cp;
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 25.) (fun () -> alive := false));
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 30.) (fun () ->
         Alcotest.(check bool) "still live within ttl" true
           (Mmt_innet.Control_plane.best_buffer cp = Some buffer_a_ip)));
  ignore
    (Mmt_sim.Engine.schedule engine ~at:(Units.Time.ms 100.) (fun () ->
         Alcotest.(check bool) "expired after withdrawal" true
           (Mmt_innet.Control_plane.best_buffer cp = None);
         Mmt_innet.Control_plane.stop cp));
  Mmt_sim.Engine.run ~until:(Units.Time.ms 120.) engine

let test_control_plane_ingests_and_gossips () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let cp =
    Mmt_innet.Control_plane.create ~env ~period:(Units.Time.ms 10.)
      ~peers:[ Addr.Ip.of_octets 10 0 9 9 ]
      ~gossip_hops:1 ()
  in
  (* Build an advert packet as a peer would send it. *)
  let header =
    Mmt.Header.with_kind
      (Mmt.Header.mode0 ~experiment:(Mmt.Experiment_id.make ~experiment:0 ~slice:0))
      Mmt.Feature.Kind.Buffer_advert
  in
  let frame =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         { src = buffer_b_ip; dst = env.Mmt_runtime.Env.local_ip; dscp = 0; ttl = 64 })
      (Bytes.cat (Mmt.Header.encode header)
         (Mmt.Control.Buffer_advert.encode (advert buffer_b_ip 3.)))
  in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero frame in
  Mmt_innet.Control_plane.on_packet cp packet;
  Alcotest.(check bool) "learned" true
    (Mmt_innet.Control_plane.best_buffer cp = Some buffer_b_ip);
  Alcotest.(check int) "received counted" 1
    (Mmt_innet.Control_plane.stats cp).Mmt_innet.Control_plane.adverts_received;
  Alcotest.(check int) "re-gossiped once" 1 (Queue.length queue);
  (* A second copy is not re-gossiped (hop budget spent). *)
  Queue.clear queue;
  Mmt_innet.Control_plane.on_packet cp packet;
  Alcotest.(check int) "no second gossip" 0 (Queue.length queue)

let test_planner_selects_nearest () =
  let map = Mmt_innet.Resource_map.create () in
  let now = Units.Time.zero in
  Mmt_innet.Resource_map.learn map ~now (advert buffer_a_ip 5.);
  Mmt_innet.Resource_map.learn map ~now (advert buffer_b_ip 2.);
  let requirement =
    Mmt_innet.Planner.requirement ~name:"wan" ~reliability:true ~age_budget_us:1000 ()
  in
  match Mmt_innet.Planner.plan requirement ~map ~now with
  | Ok mode ->
      Alcotest.(check bool) "nearest buffer" true
        (mode.Mmt.Mode.retransmit_from = Some buffer_b_ip);
      Alcotest.(check bool) "well-formed" true (Mmt.Mode.check mode = Ok ())
  | Error e -> Alcotest.fail e

let test_planner_reports_missing_resource () =
  let map = Mmt_innet.Resource_map.create () in
  let requirement = Mmt_innet.Planner.requirement ~name:"wan" ~reliability:true () in
  Alcotest.(check bool) "no buffer -> error" true
    (Result.is_error (Mmt_innet.Planner.plan requirement ~map ~now:Units.Time.zero));
  (* Without reliability, planning succeeds resource-free. *)
  let plain = Mmt_innet.Planner.requirement ~name:"plain" ~age_budget_us:5 () in
  Alcotest.(check bool) "resource-free plan" true
    (Result.is_ok (Mmt_innet.Planner.plan plain ~map ~now:Units.Time.zero))

let test_replan_applies_mode_change () =
  let map = Mmt_innet.Resource_map.create ~ttl:(Units.Time.ms 10.) () in
  Mmt_innet.Resource_map.learn map ~now:Units.Time.zero (advert buffer_a_ip 2.);
  let requirement =
    Mmt_innet.Planner.requirement ~name:"wan" ~reliability:true ~age_budget_us:1000 ()
  in
  let initial =
    match Mmt_innet.Planner.plan requirement ~map ~now:Units.Time.zero with
    | Ok mode -> mode
    | Error e -> Alcotest.fail e
  in
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode:initial () in
  (* A now expires; B appears. *)
  Mmt_innet.Resource_map.learn map ~now:(Units.Time.ms 20.) (advert buffer_b_ip 4.);
  (match
     Mmt_innet.Planner.replan_rewriter requirement ~rewriter ~map
       ~now:(Units.Time.ms 20.)
   with
  | Ok mode ->
      Alcotest.(check bool) "switched to B" true
        (mode.Mmt.Mode.retransmit_from = Some buffer_b_ip)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "rewriter updated" true
    ((Mmt_innet.Mode_rewriter.mode rewriter).Mmt.Mode.retransmit_from
    = Some buffer_b_ip)

let test_set_mode_validates () =
  let good = Mmt.Mode.make ~name:"good" ~reliable:buffer_a_ip ~age_budget_us:10 () in
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode:good () in
  let broken = { good with Mmt.Mode.retransmit_from = None } in
  Alcotest.(check bool) "ill-formed rejected" true
    (Result.is_error (Mmt_innet.Mode_rewriter.set_mode rewriter broken));
  let seq_only =
    {
      Mmt.Mode.identification with
      Mmt.Mode.name = "seq-only";
      features = Mmt.Feature.Set.of_list [ Mmt.Feature.Sequenced ];
    }
  in
  Alcotest.(check bool) "illegal transition rejected" true
    (Result.is_error (Mmt_innet.Mode_rewriter.set_mode rewriter seq_only));
  Alcotest.(check bool) "legal change accepted" true
    (Result.is_ok
       (Mmt_innet.Mode_rewriter.set_mode rewriter
          (Mmt.Mode.make ~name:"good2" ~reliable:buffer_b_ip ~age_budget_us:10 ())))

(* Payload-processing discipline (§ 6.2) ------------------------------------ *)

let test_alert_generator_not_p4_realizable () =
  let engine = Mmt_sim.Engine.create () in
  let env, _ = Mmt_runtime.Env.loopback engine in
  let generator =
    Mmt_innet.Alert_generator.create ~env
      {
        Mmt_innet.Alert_generator.sum_adc_threshold = 1;
        subscribers = [];
        min_gap = Units.Time.zero;
      }
  in
  let element = Mmt_innet.Alert_generator.element generator in
  Alcotest.(check bool) "P4 class rejects" true
    (Result.is_error (Mmt_innet.Op.realizable element.Mmt_innet.Element.program));
  Alcotest.(check bool) "payload class accepts" true
    (Mmt_innet.Op.realizable ~allow_payload:true element.Mmt_innet.Element.program
    = Ok ())

let test_alert_generator_thresholds () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let generator =
    Mmt_innet.Alert_generator.create ~env
      {
        Mmt_innet.Alert_generator.sum_adc_threshold = 500;
        subscribers = [ Addr.Ip.of_octets 10 1 0 1 ];
        min_gap = Units.Time.zero;
      }
  in
  let element = Mmt_innet.Alert_generator.element generator in
  let fragment_with hits =
    let fragment =
      {
        Mmt_daq.Fragment.run = 1;
        trigger = 7;
        timestamp = Units.Time.zero;
        experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0;
        detector =
          Mmt_daq.Fragment.Wib_ethernet
            { crate = 1; slot = 0; fiber = 0; first_channel = 0; channel_count = 8 };
        payload = Mmt_daq.Lartpc.serialize_hits hits;
      }
    in
    let header = Mmt.Header.mode0 ~experiment:fragment.Mmt_daq.Fragment.experiment in
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Bytes.cat (Mmt.Header.encode header) (Mmt_daq.Fragment.encode fragment))
  in
  let quiet_hit =
    { Mmt_daq.Lartpc.channel = 0; start_tick = 1; time_over_threshold = 2; peak_adc = 30; sum_adc = 60 }
  in
  let loud_hit = { quiet_hit with Mmt_daq.Lartpc.sum_adc = 900 } in
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (fragment_with [ quiet_hit ]));
  Alcotest.(check int) "quiet fragment: no alert" 0 (Queue.length queue);
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (fragment_with [ loud_hit ]));
  Alcotest.(check int) "loud fragment: alert emitted" 1 (Queue.length queue);
  let stats = Mmt_innet.Alert_generator.stats generator in
  Alcotest.(check int) "inspected" 2 stats.Mmt_innet.Alert_generator.inspected;
  Alcotest.(check int) "triggered" 1 stats.Mmt_innet.Alert_generator.triggers_seen;
  (* The alert parses back to a Telescope_alert fragment. *)
  let alert_packet = Queue.pop queue in
  match Mmt.Encap.strip (Mmt_sim.Packet.frame alert_packet) with
  | Error e -> Alcotest.fail e
  | Ok (_encap, mmt) -> (
      match Mmt.Header.decode_bytes mmt with
      | Error e -> Alcotest.fail e
      | Ok header -> (
          let payload =
            Bytes.sub mmt (Mmt.Header.size header) (Bytes.length mmt - Mmt.Header.size header)
          in
          match Mmt_daq.Fragment.decode payload with
          | Ok
              {
                Mmt_daq.Fragment.detector =
                  Mmt_daq.Fragment.Telescope_alert { severity; _ };
                _;
              } ->
              Alcotest.(check bool) "severity scaled" true (severity >= 0)
          | Ok _ -> Alcotest.fail "expected a telescope alert"
          | Error e -> Alcotest.fail e))

let test_alert_generator_rate_limit () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let generator =
    Mmt_innet.Alert_generator.create ~env
      {
        Mmt_innet.Alert_generator.sum_adc_threshold = 1;
        subscribers = [ Addr.Ip.of_octets 10 1 0 1 ];
        min_gap = Units.Time.ms 5.;
      }
  in
  let element = Mmt_innet.Alert_generator.element generator in
  let loud =
    { Mmt_daq.Lartpc.channel = 0; start_tick = 0; time_over_threshold = 1; peak_adc = 10; sum_adc = 100 }
  in
  let packet () =
    let fragment =
      {
        Mmt_daq.Fragment.run = 1;
        trigger = 0;
        timestamp = Units.Time.zero;
        experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0;
        detector = Mmt_daq.Fragment.Photon_detector { module_id = 0; sipm_count = 1; gain = 1 };
        payload = Mmt_daq.Lartpc.serialize_hits [ loud ];
      }
    in
    let header = Mmt.Header.mode0 ~experiment:fragment.Mmt_daq.Fragment.experiment in
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Bytes.cat (Mmt.Header.encode header) (Mmt_daq.Fragment.encode fragment))
  in
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (packet ()));
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (packet ()));
  Alcotest.(check int) "second alert suppressed" 1 (Queue.length queue);
  Alcotest.(check int) "both crossings counted" 2
    (Mmt_innet.Alert_generator.stats generator).Mmt_innet.Alert_generator.triggers_seen

(* Failover integration ------------------------------------------------------- *)

let test_failover_end_to_end () =
  let outcome =
    Mmt_pilot.Failover_run.run
      (Mmt_pilot.Failover_run.params ~fragment_count:12_000
         ~fail_buffer_a_at:(Units.Time.ms 5.) ())
  in
  Alcotest.(check int) "all delivered" 12_000 outcome.Mmt_pilot.Failover_run.delivered;
  Alcotest.(check int) "none lost" 0 outcome.Mmt_pilot.Failover_run.lost;
  Alcotest.(check string) "switched to B" "B" outcome.Mmt_pilot.Failover_run.final_buffer;
  Alcotest.(check int) "one mode change" 1 outcome.Mmt_pilot.Failover_run.mode_changes;
  Alcotest.(check bool) "B served recoveries" true
    (outcome.Mmt_pilot.Failover_run.naks_served_by_b > 0)

let test_priority_runner_shapes () =
  let run deadline_aware =
    Mmt_pilot.Runners.Priority_run.run
      (Mmt_pilot.Runners.Priority_run.params ~deadline_aware ())
  in
  let droptail = run false in
  let edf = run true in
  Alcotest.(check bool) "droptail has late alerts" true
    (droptail.Mmt_pilot.Runners.Priority_run.alerts_late > 0);
  Alcotest.(check int) "edf has none" 0 edf.Mmt_pilot.Runners.Priority_run.alerts_late;
  Alcotest.(check int) "bulk equal" droptail.Mmt_pilot.Runners.Priority_run.bulk_delivered
    edf.Mmt_pilot.Runners.Priority_run.bulk_delivered

let suite =
  [
    Alcotest.test_case "crypto roundtrip" `Quick test_crypto_roundtrip;
    Alcotest.test_case "crypto wrong key" `Quick test_crypto_wrong_key;
    Alcotest.test_case "crypto wrong nonce" `Quick test_crypto_wrong_nonce;
    Alcotest.test_case "crypto detects corruption" `Quick test_crypto_detects_corruption;
    Alcotest.test_case "crypto empty payload" `Quick test_crypto_empty_payload;
    QCheck_alcotest.to_alcotest qcheck_crypto_roundtrip;
    Alcotest.test_case "control plane advertises" `Quick test_control_plane_advertises;
    Alcotest.test_case "withdrawal expires" `Quick test_control_plane_withdraw_expires;
    Alcotest.test_case "ingest + bounded gossip" `Quick test_control_plane_ingests_and_gossips;
    Alcotest.test_case "planner selects nearest" `Quick test_planner_selects_nearest;
    Alcotest.test_case "planner missing resource" `Quick test_planner_reports_missing_resource;
    Alcotest.test_case "replan applies change" `Quick test_replan_applies_mode_change;
    Alcotest.test_case "set_mode validates" `Quick test_set_mode_validates;
    Alcotest.test_case "alert gen not P4" `Quick test_alert_generator_not_p4_realizable;
    Alcotest.test_case "alert gen thresholds" `Quick test_alert_generator_thresholds;
    Alcotest.test_case "alert gen rate limit" `Quick test_alert_generator_rate_limit;
    Alcotest.test_case "failover end-to-end" `Slow test_failover_end_to_end;
    Alcotest.test_case "priority runner shapes" `Slow test_priority_runner_shapes;
  ]
