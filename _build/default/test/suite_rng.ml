open Mmt_util

let test_determinism () =
  let a = Rng.create ~seed:99L in
  let b = Rng.create ~seed:99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_copy_independence () =
  let a = Rng.create ~seed:5L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 10 do
    Alcotest.(check int64) "copy tracks original's state" (Rng.int64 a)
      (Rng.int64 b)
  done

let test_split_diverges () =
  let a = Rng.create ~seed:5L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Rng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng ~bound:7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng ~bound:0))

let test_int_in_range () =
  let rng = Rng.create ~seed:2L in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-3) ~hi:3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done;
  Alcotest.(check int) "degenerate range" 5 (Rng.int_in_range rng ~lo:5 ~hi:5)

let test_float_unit_interval () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_uniformity_rough () =
  let rng = Rng.create ~seed:4L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng ~bound:10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun count ->
      let expected = n / 10 in
      Alcotest.(check bool) "within 5% of uniform" true
        (abs (count - expected) < expected / 20))
    buckets

let test_gaussian_moments () =
  let rng = Rng.create ~seed:6L in
  let acc = Stats.Welford.create () in
  for _ = 1 to 50_000 do
    Stats.Welford.add acc (Rng.gaussian rng ~mu:10. ~sigma:2.)
  done;
  Alcotest.(check bool) "mean near 10" true
    (Float.abs (Stats.Welford.mean acc -. 10.) < 0.1);
  Alcotest.(check bool) "stddev near 2" true
    (Float.abs (Stats.Welford.stddev acc -. 2.) < 0.1)

let test_exponential_mean () =
  let rng = Rng.create ~seed:7L in
  let acc = Stats.Welford.create () in
  for _ = 1 to 50_000 do
    Stats.Welford.add acc (Rng.exponential rng ~rate:4.)
  done;
  Alcotest.(check bool) "mean near 1/4" true
    (Float.abs (Stats.Welford.mean acc -. 0.25) < 0.01)

let test_exponential_rejects_bad_rate () =
  let rng = Rng.create ~seed:7L in
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.))

let test_poisson_mean () =
  let rng = Rng.create ~seed:8L in
  let acc = Stats.Welford.create () in
  for _ = 1 to 20_000 do
    Stats.Welford.add acc (float_of_int (Rng.poisson rng ~mean:3.5))
  done;
  Alcotest.(check bool) "mean near 3.5" true
    (Float.abs (Stats.Welford.mean acc -. 3.5) < 0.1)

let test_poisson_large_mean () =
  let rng = Rng.create ~seed:8L in
  let acc = Stats.Welford.create () in
  for _ = 1 to 5_000 do
    Stats.Welford.add acc (float_of_int (Rng.poisson rng ~mean:1000.))
  done;
  Alcotest.(check bool) "normal-approx mean near 1000" true
    (Float.abs (Stats.Welford.mean acc -. 1000.) < 10.)

let test_poisson_zero () =
  let rng = Rng.create ~seed:8L in
  Alcotest.(check int) "zero mean" 0 (Rng.poisson rng ~mean:0.)

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:9L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.)

let test_pick_and_shuffle () =
  let rng = Rng.create ~seed:10L in
  let values = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "pick member" true
      (Array.mem (Rng.pick rng values) values)
  done;
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_pareto_bounds () =
  let rng = Rng.create ~seed:11L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true
      (Rng.pareto rng ~shape:1.5 ~scale:2. >= 2.)
  done

let qcheck_int_in_range =
  QCheck.Test.make ~name:"int_in_range stays in range" ~count:500
    QCheck.(triple int64 (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let rng = Rng.create ~seed in
      let v = Rng.int_in_range rng ~lo ~hi:(lo + width) in
      v >= lo && v <= lo + width)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float unit interval" `Quick test_float_unit_interval;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential bad rate" `Quick test_exponential_rejects_bad_rate;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "pick and shuffle" `Quick test_pick_and_shuffle;
    Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
    QCheck_alcotest.to_alcotest qcheck_int_in_range;
  ]
