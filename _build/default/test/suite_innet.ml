(* P4 op programs, in-network elements, resource map and switch shell. *)
open Mmt_util
open Mmt_frame

let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0
let buffer_ip = Addr.Ip.of_octets 10 0 1 1
let notify_ip = Addr.Ip.of_octets 10 0 0 9

(* Op programs ---------------------------------------------------------------- *)

let test_realizable_ok () =
  let program =
    { Mmt_innet.Op.name = "ok"; ops = [ Mmt_innet.Op.Extract "a"; Mmt_innet.Op.Set_field "b" ] }
  in
  Alcotest.(check bool) "ok" true (Mmt_innet.Op.realizable program = Ok ())

let test_realizable_rejects_payload () =
  let program =
    { Mmt_innet.Op.name = "bad"; ops = [ Mmt_innet.Op.Payload_access "body" ] }
  in
  Alcotest.(check bool) "payload rejected" true
    (match Mmt_innet.Op.realizable program with Error _ -> true | Ok () -> false)

let test_realizable_rejects_float () =
  let program = { Mmt_innet.Op.name = "bad"; ops = [ Mmt_innet.Op.Float_op "ewma" ] } in
  Alcotest.(check bool) "float rejected" true
    (match Mmt_innet.Op.realizable program with Error _ -> true | Ok () -> false)

let test_realizable_rejects_too_many_ops () =
  let program =
    {
      Mmt_innet.Op.name = "huge";
      ops = List.init 100 (fun i -> Mmt_innet.Op.Set_field (string_of_int i));
    }
  in
  Alcotest.(check bool) "op budget" true
    (match Mmt_innet.Op.realizable program with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "explicit budget" true
    (Mmt_innet.Op.realizable ~max_ops:100 program = Ok ())

let test_shipped_elements_realizable () =
  let engine = Mmt_sim.Engine.create () in
  let env, _ = Mmt_runtime.Env.loopback engine in
  let mode = Mmt.Mode.make ~name:"m" ~reliable:buffer_ip ~age_budget_us:10 () in
  let elements =
    [
      Mmt_innet.Mode_rewriter.element (Mmt_innet.Mode_rewriter.create ~mode ());
      Mmt_innet.Age_tracker.element (Mmt_innet.Age_tracker.create ());
      Mmt_innet.Duplicator.element
        (Mmt_innet.Duplicator.create ~env ~consumers:[ notify_ip ] ());
      Mmt_innet.Timeliness_checker.element
        (Mmt_innet.Timeliness_checker.create ~env ~policy:Mmt_innet.Timeliness_checker.Mark ());
    ]
  in
  List.iter
    (fun (e : Mmt_innet.Element.t) ->
      match Mmt_innet.Op.realizable e.Mmt_innet.Element.program with
      | Ok () -> ()
      | Error reason -> Alcotest.fail reason)
    elements

(* Mode rewriter ---------------------------------------------------------------- *)

let mode0_packet ~engine ~id payload_size =
  let frame =
    Bytes.cat
      (Mmt.Header.encode (Mmt.Header.mode0 ~experiment))
      (Bytes.make payload_size 'p')
  in
  Mmt_sim.Packet.create ~id ~born:(Mmt_sim.Engine.now engine) frame

let wan_mode =
  Mmt.Mode.make ~name:"wan" ~reliable:buffer_ip
    ~deadline_budget:(Units.Time.ms 20., notify_ip)
    ~age_budget_us:15_000 ()

let header_of_packet packet =
  match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
  | Error e -> Alcotest.fail e
  | Ok (_encap, off) -> (
      match Mmt.Header.decode_bytes ~off (Mmt_sim.Packet.frame packet) with
      | Ok header -> header
      | Error e -> Alcotest.fail e)

let test_rewriter_activates_mode () =
  let engine = Mmt_sim.Engine.create () in
  let stored = ref [] in
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:wan_mode
      ~on_rewrite:(fun ~seq ~born:_ _frame -> stored := seq :: !stored)
      ()
  in
  let element = Mmt_innet.Mode_rewriter.element rewriter in
  let run_one id =
    match element.Mmt_innet.Element.process ~now:(Units.Time.ms 1.) (mode0_packet ~engine ~id 64) with
    | Mmt_innet.Element.Forward p -> p
    | _ -> Alcotest.fail "expected forward"
  in
  let p0 = run_one 0 in
  let p1 = run_one 1 in
  let h0 = header_of_packet p0 in
  let h1 = header_of_packet p1 in
  Alcotest.(check (option int)) "seq 0" (Some 0) h0.Mmt.Header.sequence;
  Alcotest.(check (option int)) "seq 1" (Some 1) h1.Mmt.Header.sequence;
  Alcotest.(check bool) "buffer named" true
    (match h0.Mmt.Header.retransmit_from with
    | Some ip -> Addr.Ip.equal ip buffer_ip
    | None -> false);
  (match h0.Mmt.Header.timely with
  | Some { Mmt.Header.deadline; notify } ->
      Alcotest.(check string) "deadline = ingress + budget" "21ms"
        (Units.Time.to_string deadline);
      Alcotest.(check bool) "notify" true (Addr.Ip.equal notify notify_ip)
  | None -> Alcotest.fail "expected timely");
  (match h0.Mmt.Header.age with
  | Some age ->
      Alcotest.(check int) "age zeroed" 0 age.Mmt.Header.age_us;
      Alcotest.(check int) "budget" 15_000 age.Mmt.Header.budget_us
  | None -> Alcotest.fail "expected age");
  Alcotest.(check (list (option int))) "stored callbacks" [ Some 1; Some 0 ] !stored;
  let stats = Mmt_innet.Mode_rewriter.stats rewriter in
  Alcotest.(check int) "rewritten" 2 stats.Mmt_innet.Mode_rewriter.rewritten;
  Alcotest.(check int) "sequenced" 2 stats.Mmt_innet.Mode_rewriter.sequenced

let test_rewriter_re_encapsulates () =
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:wan_mode
      ~re_encap:
        (Mmt.Encap.Over_ipv4
           { src = buffer_ip; dst = Addr.Ip.of_octets 10 0 3 1; dscp = 0; ttl = 64 })
      ()
  in
  let element = Mmt_innet.Mode_rewriter.element rewriter in
  (* Start from an Ethernet-encapsulated mode-0 frame (DAQ network). *)
  let eth_frame =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ethernet
         {
           src = Addr.Mac.of_string "02:00:00:00:00:01";
           dst = Addr.Mac.of_string "02:00:00:00:00:02";
         })
      (Bytes.cat (Mmt.Header.encode (Mmt.Header.mode0 ~experiment)) (Bytes.make 10 'p'))
  in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero eth_frame in
  (match element.Mmt_innet.Element.process ~now:Units.Time.zero packet with
  | Mmt_innet.Element.Forward p -> (
      match Mmt.Encap.locate (Mmt_sim.Packet.frame p) with
      | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, _) ->
          Alcotest.(check string) "now IPv4 toward DTN2" "10.0.3.1" (Addr.Ip.to_string dst)
      | Ok _ -> Alcotest.fail "expected IPv4 encap"
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected forward")

let test_rewriter_strips_features () =
  (* Campus-border rewriter: back to identification-only. *)
  let strip_mode = { Mmt.Mode.identification with Mmt.Mode.name = "strip" } in
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode:strip_mode () in
  let element = Mmt_innet.Mode_rewriter.element rewriter in
  let rich_header =
    Mmt.Header.with_retransmit_from
      (Mmt.Header.with_sequence (Mmt.Header.mode0 ~experiment) 5)
      buffer_ip
  in
  let packet =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Bytes.cat (Mmt.Header.encode rich_header) (Bytes.make 8 'p'))
  in
  match element.Mmt_innet.Element.process ~now:Units.Time.zero packet with
  | Mmt_innet.Element.Forward p ->
      let h = header_of_packet p in
      Alcotest.(check (option int)) "seq stripped" None h.Mmt.Header.sequence;
      Alcotest.(check bool) "features empty" true
        (Mmt.Feature.Set.equal h.Mmt.Header.features Mmt.Feature.Set.empty)
  | _ -> Alcotest.fail "expected forward"

let test_rewriter_passes_control () =
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode:wan_mode () in
  let element = Mmt_innet.Mode_rewriter.element rewriter in
  let nak_header =
    Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Nak
  in
  let packet =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Mmt.Header.encode nak_header)
  in
  (match element.Mmt_innet.Element.process ~now:Units.Time.zero packet with
  | Mmt_innet.Element.Forward p ->
      let h = header_of_packet p in
      Alcotest.(check (option int)) "untouched" None h.Mmt.Header.sequence
  | _ -> Alcotest.fail "expected forward");
  Alcotest.(check int) "passed counted" 1
    (Mmt_innet.Mode_rewriter.stats rewriter).Mmt_innet.Mode_rewriter.passed

let test_rewriter_per_experiment_counters () =
  let rewriter = Mmt_innet.Mode_rewriter.create ~mode:wan_mode () in
  let element = Mmt_innet.Mode_rewriter.element rewriter in
  let experiment_b = Mmt.Experiment_id.make ~experiment:5 ~slice:0 in
  let packet_of exp =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Bytes.cat (Mmt.Header.encode (Mmt.Header.mode0 ~experiment:exp)) (Bytes.make 4 'p'))
  in
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (packet_of experiment));
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (packet_of experiment));
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero (packet_of experiment_b));
  Alcotest.(check int) "exp A counter" 2
    (Mmt_innet.Mode_rewriter.next_sequence rewriter ~experiment);
  Alcotest.(check int) "exp B independent" 1
    (Mmt_innet.Mode_rewriter.next_sequence rewriter ~experiment:experiment_b)

(* Age tracker ------------------------------------------------------------------- *)

let test_age_tracker_accumulates () =
  let tracker = Mmt_innet.Age_tracker.create () in
  let element = Mmt_innet.Age_tracker.element tracker in
  let header =
    Mmt.Header.with_age (Mmt.Header.mode0 ~experiment)
      {
        Mmt.Header.age_us = 0;
        budget_us = 1_000;
        aged = false;
        hop_count = 0;
        last_touch_ns = Units.Time.zero;
      }
  in
  let packet =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Mmt.Header.encode header)
  in
  (match element.Mmt_innet.Element.process ~now:(Units.Time.us 300.) packet with
  | Mmt_innet.Element.Forward p -> (
      let h = header_of_packet p in
      match h.Mmt.Header.age with
      | Some age ->
          Alcotest.(check int) "age 300us" 300 age.Mmt.Header.age_us;
          Alcotest.(check bool) "not aged" false age.Mmt.Header.aged;
          Alcotest.(check int) "hop" 1 age.Mmt.Header.hop_count
      | None -> Alcotest.fail "age missing")
  | _ -> Alcotest.fail "expected forward");
  (* Second touch beyond the budget marks aged. *)
  (match element.Mmt_innet.Element.process ~now:(Units.Time.us 1_500.) packet with
  | Mmt_innet.Element.Forward p -> (
      match (header_of_packet p).Mmt.Header.age with
      | Some age -> Alcotest.(check bool) "aged" true age.Mmt.Header.aged
      | None -> Alcotest.fail "age missing")
  | _ -> Alcotest.fail "expected forward");
  let stats = Mmt_innet.Age_tracker.stats tracker in
  Alcotest.(check int) "touched" 2 stats.Mmt_innet.Age_tracker.touched;
  Alcotest.(check int) "aged marked once" 1 stats.Mmt_innet.Age_tracker.aged_marked

let test_age_tracker_ignores_untracked () =
  let tracker = Mmt_innet.Age_tracker.create () in
  let element = Mmt_innet.Age_tracker.element tracker in
  let packet =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Mmt.Header.encode (Mmt.Header.mode0 ~experiment))
  in
  ignore (element.Mmt_innet.Element.process ~now:(Units.Time.us 5.) packet);
  Alcotest.(check int) "untracked" 1
    (Mmt_innet.Age_tracker.stats tracker).Mmt_innet.Age_tracker.untracked

(* Duplicator ----------------------------------------------------------------------- *)

let test_duplicator_fans_out () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let consumers = [ Addr.Ip.of_octets 10 1 0 1; Addr.Ip.of_octets 10 1 0 2 ] in
  let dup = Mmt_innet.Duplicator.create ~env ~consumers () in
  let element = Mmt_innet.Duplicator.element dup in
  let packet = mode0_packet ~engine ~id:7 32 in
  (match element.Mmt_innet.Element.process ~now:Units.Time.zero packet with
  | Mmt_innet.Element.Forward p ->
      (* Original forwarded unmarked. *)
      Alcotest.(check bool) "original not marked" false
        (Mmt.Feature.Set.mem Mmt.Feature.Duplicated
           (header_of_packet p).Mmt.Header.features)
  | _ -> Alcotest.fail "expected forward");
  let copies = ref [] in
  Queue.iter (fun p -> copies := p :: !copies) queue;
  Alcotest.(check int) "two copies" 2 (List.length !copies);
  List.iter
    (fun copy ->
      Alcotest.(check bool) "copy marked duplicated" true
        (Mmt.Feature.Set.mem Mmt.Feature.Duplicated
           (header_of_packet copy).Mmt.Header.features);
      Alcotest.(check bool) "fresh identity" true
        (copy.Mmt_sim.Packet.id <> packet.Mmt_sim.Packet.id))
    !copies;
  let stats = Mmt_innet.Duplicator.stats dup in
  Alcotest.(check int) "duplicated" 1 stats.Mmt_innet.Duplicator.duplicated;
  Alcotest.(check int) "copies" 2 stats.Mmt_innet.Duplicator.copies_sent

let test_duplicator_skips_control () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let dup = Mmt_innet.Duplicator.create ~env ~consumers:[ notify_ip ] () in
  let element = Mmt_innet.Duplicator.element dup in
  let nak =
    Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero
      (Mmt.Header.encode
         (Mmt.Header.with_kind (Mmt.Header.mode0 ~experiment) Mmt.Feature.Kind.Nak))
  in
  ignore (element.Mmt_innet.Element.process ~now:Units.Time.zero nak);
  Alcotest.(check int) "no copies of control" 0 (Queue.length queue)

(* Timeliness checker ------------------------------------------------------------------ *)

let timely_packet ~deadline =
  let header =
    Mmt.Header.with_timely (Mmt.Header.mode0 ~experiment)
      { Mmt.Header.deadline; notify = notify_ip }
  in
  Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Mmt.Header.encode header)

let test_timeliness_drop_policy () =
  let engine = Mmt_sim.Engine.create () in
  let env, _ = Mmt_runtime.Env.loopback engine in
  let checker =
    Mmt_innet.Timeliness_checker.create ~env
      ~policy:Mmt_innet.Timeliness_checker.Drop_expired ()
  in
  let element = Mmt_innet.Timeliness_checker.element checker in
  (match
     element.Mmt_innet.Element.process ~now:(Units.Time.ms 5.)
       (timely_packet ~deadline:(Units.Time.ms 2.))
   with
  | Mmt_innet.Element.Discard _ -> ()
  | _ -> Alcotest.fail "expected discard");
  (match
     element.Mmt_innet.Element.process ~now:(Units.Time.ms 1.)
       (timely_packet ~deadline:(Units.Time.ms 2.))
   with
  | Mmt_innet.Element.Forward _ -> ()
  | _ -> Alcotest.fail "expected forward");
  let stats = Mmt_innet.Timeliness_checker.stats checker in
  Alcotest.(check int) "checked" 2 stats.Mmt_innet.Timeliness_checker.checked;
  Alcotest.(check int) "expired" 1 stats.Mmt_innet.Timeliness_checker.expired;
  Alcotest.(check int) "dropped" 1 stats.Mmt_innet.Timeliness_checker.dropped

let test_timeliness_notify_policy () =
  let engine = Mmt_sim.Engine.create () in
  let env, queue = Mmt_runtime.Env.loopback engine in
  let checker =
    Mmt_innet.Timeliness_checker.create ~env ~policy:Mmt_innet.Timeliness_checker.Notify ()
  in
  let element = Mmt_innet.Timeliness_checker.element checker in
  (match
     element.Mmt_innet.Element.process ~now:(Units.Time.ms 5.)
       (timely_packet ~deadline:(Units.Time.ms 2.))
   with
  | Mmt_innet.Element.Forward _ -> ()
  | _ -> Alcotest.fail "expected forward despite lateness");
  Alcotest.(check int) "notice emitted" 1 (Queue.length queue);
  Alcotest.(check int) "counted" 1
    (Mmt_innet.Timeliness_checker.stats checker).Mmt_innet.Timeliness_checker.notices_sent

(* Element chain ------------------------------------------------------------------------ *)

let test_chain_order_and_discard () =
  let log = ref [] in
  let mk name outcome =
    {
      Mmt_innet.Element.name;
      program = { Mmt_innet.Op.name; ops = [] };
      process =
        (fun ~now:_ packet ->
          log := name :: !log;
          outcome packet);
    }
  in
  let fwd name = mk name (fun p -> Mmt_innet.Element.Forward p) in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Bytes.create 4) in
  (match
     Mmt_innet.Element.chain [ fwd "a"; fwd "b"; fwd "c" ] ~now:Units.Time.zero packet
   with
  | Mmt_innet.Element.Forward _ -> ()
  | _ -> Alcotest.fail "expected forward");
  Alcotest.(check (list string)) "left to right" [ "a"; "b"; "c" ] (List.rev !log);
  log := [];
  let dropper = mk "drop" (fun _ -> Mmt_innet.Element.Discard "no") in
  (match
     Mmt_innet.Element.chain [ fwd "a"; dropper; fwd "c" ] ~now:Units.Time.zero packet
   with
  | Mmt_innet.Element.Discard _ -> ()
  | _ -> Alcotest.fail "expected discard");
  Alcotest.(check (list string)) "c never runs" [ "a"; "drop" ] (List.rev !log)

let test_chain_replicate_fans_remaining () =
  let seen = ref 0 in
  let replicator =
    {
      Mmt_innet.Element.name = "rep";
      program = { Mmt_innet.Op.name = "rep"; ops = [] };
      process =
        (fun ~now:_ packet ->
          Mmt_innet.Element.Replicate
            [ packet; Mmt_sim.Packet.copy packet ~id:99 ]);
    }
  in
  let counter =
    {
      Mmt_innet.Element.name = "count";
      program = { Mmt_innet.Op.name = "count"; ops = [] };
      process =
        (fun ~now:_ packet ->
          incr seen;
          Mmt_innet.Element.Forward packet);
    }
  in
  let packet = Mmt_sim.Packet.create ~id:0 ~born:Units.Time.zero (Bytes.create 4) in
  (match
     Mmt_innet.Element.chain [ replicator; counter ] ~now:Units.Time.zero packet
   with
  | Mmt_innet.Element.Replicate survivors ->
      Alcotest.(check int) "both forwarded" 2 (List.length survivors)
  | _ -> Alcotest.fail "expected replicate");
  Alcotest.(check int) "tail ran per copy" 2 !seen

(* Resource map ----------------------------------------------------------------------------- *)

let advert ip rtt_ms =
  {
    Mmt.Control.Buffer_advert.buffer = ip;
    capacity = Units.Size.mib 64;
    rtt_hint = Units.Time.ms rtt_ms;
  }

let test_resource_map_best_buffer () =
  let map = Mmt_innet.Resource_map.create () in
  let now = Units.Time.zero in
  Mmt_innet.Resource_map.learn map ~now (advert buffer_ip 5.);
  Mmt_innet.Resource_map.learn map ~now (advert notify_ip 2.);
  (match Mmt_innet.Resource_map.best_buffer map ~now with
  | Some best -> Alcotest.(check bool) "lowest rtt wins" true (Addr.Ip.equal best notify_ip)
  | None -> Alcotest.fail "expected a buffer");
  Alcotest.(check int) "size" 2 (Mmt_innet.Resource_map.size map)

let test_resource_map_expiry () =
  let map = Mmt_innet.Resource_map.create ~ttl:(Units.Time.seconds 1.) () in
  Mmt_innet.Resource_map.learn map ~now:Units.Time.zero (advert buffer_ip 5.);
  Alcotest.(check (option bool)) "live" (Some true)
    (Option.map (Addr.Ip.equal buffer_ip)
       (Mmt_innet.Resource_map.best_buffer map ~now:(Units.Time.seconds 0.5)));
  Alcotest.(check bool) "stale invisible" true
    (Mmt_innet.Resource_map.best_buffer map ~now:(Units.Time.seconds 2.) = None);
  Alcotest.(check int) "expired" 1
    (Mmt_innet.Resource_map.expire map ~now:(Units.Time.seconds 2.));
  Alcotest.(check int) "empty" 0 (Mmt_innet.Resource_map.size map)

let test_resource_map_merge () =
  let a = Mmt_innet.Resource_map.create () in
  let b = Mmt_innet.Resource_map.create () in
  let now = Units.Time.zero in
  Mmt_innet.Resource_map.learn a ~now (advert buffer_ip 5.);
  Mmt_innet.Resource_map.learn b ~now (advert notify_ip 2.);
  let absorbed = Mmt_innet.Resource_map.merge a ~from:b ~now in
  Alcotest.(check int) "one absorbed" 1 absorbed;
  Alcotest.(check int) "both present" 2 (Mmt_innet.Resource_map.size a);
  (* Merging again absorbs nothing new. *)
  Alcotest.(check int) "idempotent" 0 (Mmt_innet.Resource_map.merge a ~from:b ~now)

(* Switch ----------------------------------------------------------------------------------------- *)

let test_switch_pipeline_latency_and_routing () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let node = Mmt_sim.Topology.add_node topo ~name:"sw" in
  let arrivals = ref [] in
  let switch =
    Mmt_innet.Switch.attach ~engine ~node ~profile:Mmt_innet.Switch.tofino2
      ~elements:[ Mmt_innet.Element.passthrough ]
      ~route:(fun _ -> Some (fun p -> arrivals := (Mmt_sim.Engine.now engine, p) :: !arrivals))
      ()
  in
  Mmt_sim.Node.handle node (mode0_packet ~engine ~id:0 16);
  Mmt_sim.Engine.run engine;
  (match !arrivals with
  | [ (at, _) ] ->
      Alcotest.(check string) "tofino latency" "450ns" (Units.Time.to_string at)
  | _ -> Alcotest.fail "expected one arrival");
  let stats = Mmt_innet.Switch.stats switch in
  Alcotest.(check int) "processed" 1 stats.Mmt_innet.Switch.processed;
  Alcotest.(check int) "forwarded" 1 stats.Mmt_innet.Switch.forwarded

let test_switch_counts_unrouted () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let node = Mmt_sim.Topology.add_node topo ~name:"sw" in
  let switch =
    Mmt_innet.Switch.attach ~engine ~node ~profile:Mmt_innet.Switch.tofino2
      ~elements:[] ~route:(fun _ -> None) ()
  in
  Mmt_sim.Node.handle node (mode0_packet ~engine ~id:0 16);
  Mmt_sim.Engine.run engine;
  Alcotest.(check int) "unrouted" 1
    (Mmt_innet.Switch.stats switch).Mmt_innet.Switch.unrouted

let test_switch_rejects_unrealizable () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let node = Mmt_sim.Topology.add_node topo ~name:"sw" in
  let bad =
    {
      Mmt_innet.Element.name = "bad";
      program = { Mmt_innet.Op.name = "bad"; ops = [ Mmt_innet.Op.Float_op "x" ] };
      process = (fun ~now:_ p -> Mmt_innet.Element.Forward p);
    }
  in
  Alcotest.(check bool) "attach rejects" true
    (match
       Mmt_innet.Switch.attach ~engine ~node ~profile:Mmt_innet.Switch.tofino2
         ~elements:[ bad ] ~route:(fun _ -> None) ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "realizable ok" `Quick test_realizable_ok;
    Alcotest.test_case "realizable rejects payload" `Quick test_realizable_rejects_payload;
    Alcotest.test_case "realizable rejects float" `Quick test_realizable_rejects_float;
    Alcotest.test_case "realizable op budget" `Quick test_realizable_rejects_too_many_ops;
    Alcotest.test_case "shipped elements realizable" `Quick test_shipped_elements_realizable;
    Alcotest.test_case "rewriter activates mode" `Quick test_rewriter_activates_mode;
    Alcotest.test_case "rewriter re-encapsulates" `Quick test_rewriter_re_encapsulates;
    Alcotest.test_case "rewriter strips features" `Quick test_rewriter_strips_features;
    Alcotest.test_case "rewriter passes control" `Quick test_rewriter_passes_control;
    Alcotest.test_case "per-experiment counters" `Quick test_rewriter_per_experiment_counters;
    Alcotest.test_case "age tracker accumulates" `Quick test_age_tracker_accumulates;
    Alcotest.test_case "age tracker ignores untracked" `Quick test_age_tracker_ignores_untracked;
    Alcotest.test_case "duplicator fans out" `Quick test_duplicator_fans_out;
    Alcotest.test_case "duplicator skips control" `Quick test_duplicator_skips_control;
    Alcotest.test_case "timeliness drop policy" `Quick test_timeliness_drop_policy;
    Alcotest.test_case "timeliness notify policy" `Quick test_timeliness_notify_policy;
    Alcotest.test_case "chain order + discard" `Quick test_chain_order_and_discard;
    Alcotest.test_case "chain replicate" `Quick test_chain_replicate_fans_remaining;
    Alcotest.test_case "resource map best buffer" `Quick test_resource_map_best_buffer;
    Alcotest.test_case "resource map expiry" `Quick test_resource_map_expiry;
    Alcotest.test_case "resource map merge" `Quick test_resource_map_merge;
    Alcotest.test_case "switch latency + routing" `Quick test_switch_pipeline_latency_and_routing;
    Alcotest.test_case "switch unrouted" `Quick test_switch_counts_unrouted;
    Alcotest.test_case "switch rejects unrealizable" `Quick test_switch_rejects_unrealizable;
  ]
