(* Tiny substring helper so tests avoid external string libraries. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0
