(* Control message codecs and encapsulation. *)
open Mmt_util
open Mmt_frame

let ip = Addr.Ip.of_octets 10 0 3 1

(* NAK --------------------------------------------------------------------- *)

let test_nak_roundtrip () =
  let nak = { Mmt.Control.Nak.requester = ip; ranges = [ (3, 7); (12, 12); (100, 105) ] } in
  match Mmt.Control.Nak.decode (Mmt.Control.Nak.encode nak) with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Mmt.Control.Nak.equal nak decoded)
  | Error e -> Alcotest.fail e

let test_nak_sequence_count () =
  let nak = { Mmt.Control.Nak.requester = ip; ranges = [ (3, 7); (12, 12) ] } in
  Alcotest.(check int) "count" 6 (Mmt.Control.Nak.sequence_count nak)

let test_nak_empty_ranges () =
  let nak = { Mmt.Control.Nak.requester = ip; ranges = [] } in
  match Mmt.Control.Nak.decode (Mmt.Control.Nak.encode nak) with
  | Ok decoded -> Alcotest.(check int) "zero" 0 (Mmt.Control.Nak.sequence_count decoded)
  | Error e -> Alcotest.fail e

let test_nak_truncated () =
  Alcotest.(check bool) "truncated rejected" true
    (match Mmt.Control.Nak.decode (Bytes.create 3) with Error _ -> true | Ok _ -> false)

let test_ranges_of_sorted () =
  Alcotest.(check (list (pair int int))) "coalesce"
    [ (1, 3); (5, 5); (7, 9) ]
    (Mmt.Control.Nak.ranges_of_sorted [ 1; 2; 3; 5; 7; 8; 9 ]);
  Alcotest.(check (list (pair int int))) "empty" [] (Mmt.Control.Nak.ranges_of_sorted []);
  Alcotest.(check (list (pair int int))) "singleton" [ (4, 4) ]
    (Mmt.Control.Nak.ranges_of_sorted [ 4 ])

let qcheck_ranges_cover =
  QCheck.Test.make ~name:"ranges cover exactly the input" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 50) (int_range 0 200))
    (fun seqs ->
      let sorted = List.sort_uniq compare seqs in
      let ranges = Mmt.Control.Nak.ranges_of_sorted sorted in
      let expanded =
        List.concat_map (fun (a, b) -> List.init (b - a + 1) (fun i -> a + i)) ranges
      in
      expanded = sorted)

(* Deadline exceeded --------------------------------------------------------- *)

let test_deadline_roundtrip () =
  let notice =
    {
      Mmt.Control.Deadline_exceeded.sequence = 99;
      deadline = Units.Time.ms 10.;
      observed = Units.Time.ms 12.5;
    }
  in
  match Mmt.Control.Deadline_exceeded.decode (Mmt.Control.Deadline_exceeded.encode notice) with
  | Ok decoded ->
      Alcotest.(check bool) "equal" true
        (Mmt.Control.Deadline_exceeded.equal notice decoded);
      Alcotest.(check string) "lateness" "2.5ms"
        (Units.Time.to_string (Mmt.Control.Deadline_exceeded.lateness decoded))
  | Error e -> Alcotest.fail e

(* Backpressure --------------------------------------------------------------- *)

let test_backpressure_roundtrip () =
  let bp = { Mmt.Control.Backpressure.origin = ip; advised_pace_mbps = 5000; severity = 180 } in
  match Mmt.Control.Backpressure.decode (Mmt.Control.Backpressure.encode bp) with
  | Ok decoded -> Alcotest.(check bool) "equal" true (Mmt.Control.Backpressure.equal bp decoded)
  | Error e -> Alcotest.fail e

(* Buffer advert ---------------------------------------------------------------- *)

let test_buffer_advert_roundtrip () =
  let advert =
    {
      Mmt.Control.Buffer_advert.buffer = ip;
      capacity = Units.Size.mib 256;
      rtt_hint = Units.Time.ms 3.;
    }
  in
  match Mmt.Control.Buffer_advert.decode (Mmt.Control.Buffer_advert.encode advert) with
  | Ok decoded ->
      Alcotest.(check bool) "equal" true (Mmt.Control.Buffer_advert.equal advert decoded)
  | Error e -> Alcotest.fail e

(* Encapsulation ------------------------------------------------------------------ *)

let experiment = Mmt.Experiment_id.make ~experiment:3 ~slice:0
let mmt_frame = Mmt.Header.encode (Mmt.Header.mode0 ~experiment)

let test_encap_raw () =
  let wrapped = Mmt.Encap.wrap Mmt.Encap.Raw mmt_frame in
  Alcotest.(check bool) "raw is identity" true (Bytes.equal wrapped mmt_frame);
  match Mmt.Encap.locate wrapped with
  | Ok (Mmt.Encap.Raw, 0) -> ()
  | Ok _ -> Alcotest.fail "misidentified"
  | Error e -> Alcotest.fail e

let test_encap_ethernet () =
  let encap =
    Mmt.Encap.Over_ethernet
      {
        src = Addr.Mac.of_string "02:00:00:00:00:01";
        dst = Addr.Mac.of_string "02:00:00:00:00:02";
      }
  in
  let wrapped = Mmt.Encap.wrap encap mmt_frame in
  match Mmt.Encap.strip wrapped with
  | Ok (Mmt.Encap.Over_ethernet _, inner) ->
      Alcotest.(check bool) "payload preserved" true (Bytes.equal inner mmt_frame)
  | Ok _ -> Alcotest.fail "misidentified"
  | Error e -> Alcotest.fail e

let test_encap_ipv4 () =
  let encap =
    Mmt.Encap.Over_ipv4
      { src = Addr.Ip.of_octets 10 0 1 1; dst = ip; dscp = 0; ttl = 64 }
  in
  let wrapped = Mmt.Encap.wrap encap mmt_frame in
  match Mmt.Encap.locate wrapped with
  | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, off) ->
      Alcotest.(check int) "offset" Ipv4.header_size off;
      Alcotest.(check bool) "dst" true (Addr.Ip.equal dst ip)
  | Ok _ -> Alcotest.fail "misidentified"
  | Error e -> Alcotest.fail e

let test_encap_ethernet_ipv4 () =
  (* Ethernet around IPv4 around MMT: located at 14 + 20. *)
  let ip_frame =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         { src = Addr.Ip.of_octets 10 0 1 1; dst = ip; dscp = 0; ttl = 64 })
      mmt_frame
  in
  let w = Mmt_wire.Cursor.Writer.create (Ethernet.header_size + Bytes.length ip_frame) in
  Ethernet.write w
    {
      Ethernet.src = Addr.Mac.of_string "02:00:00:00:00:01";
      dst = Addr.Mac.of_string "02:00:00:00:00:02";
      ethertype = Ethernet.ethertype_ipv4;
    };
  Mmt_wire.Cursor.Writer.bytes w ip_frame;
  match Mmt.Encap.locate (Mmt_wire.Cursor.Writer.contents w) with
  | Ok (Mmt.Encap.Over_ipv4 _, off) ->
      Alcotest.(check int) "offset" (Ethernet.header_size + Ipv4.header_size) off
  | Ok _ -> Alcotest.fail "misidentified"
  | Error e -> Alcotest.fail e

let test_encap_rejects_foreign () =
  (* UDP-over-IPv4 is not an MMT frame. *)
  let w = Mmt_wire.Cursor.Writer.create Ipv4.header_size in
  Ipv4.write w
    {
      Ipv4.dscp = 0;
      ttl = 64;
      protocol = Ipv4.protocol_udp;
      src = ip;
      dst = ip;
      payload_length = 0;
    };
  Alcotest.(check bool) "foreign protocol rejected" true
    (match Mmt.Encap.locate (Mmt_wire.Cursor.Writer.contents w) with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "empty rejected" true
    (match Mmt.Encap.locate (Bytes.create 0) with Error _ -> true | Ok _ -> false)

let test_rewrap_grows_header_and_fixes_ip () =
  let encap =
    Mmt.Encap.Over_ipv4
      { src = Addr.Ip.of_octets 10 0 1 1; dst = ip; dscp = 0; ttl = 64 }
  in
  let payload = Bytes.of_string "payload!" in
  let original = Mmt.Encap.wrap encap (Bytes.cat mmt_frame payload) in
  (* Replace the mode-0 header with a larger, sequenced one. *)
  let bigger =
    Mmt.Header.encode
      (Mmt.Header.with_sequence (Mmt.Header.mode0 ~experiment) 7)
  in
  let rewrapped =
    Mmt.Encap.rewrap ~old_frame:original ~mmt_offset:Ipv4.header_size
      (Bytes.cat bigger payload)
  in
  (* The IPv4 header must still parse (length + checksum fixed). *)
  match Mmt.Encap.locate rewrapped with
  | Ok (Mmt.Encap.Over_ipv4 { dst; _ }, off) ->
      Alcotest.(check bool) "dst preserved" true (Addr.Ip.equal dst ip);
      (match Mmt.Header.decode_bytes ~off rewrapped with
      | Ok header -> Alcotest.(check (option int)) "new header" (Some 7) header.Mmt.Header.sequence
      | Error e -> Alcotest.fail e)
  | Ok _ -> Alcotest.fail "misidentified"
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "nak roundtrip" `Quick test_nak_roundtrip;
    Alcotest.test_case "nak sequence count" `Quick test_nak_sequence_count;
    Alcotest.test_case "nak empty" `Quick test_nak_empty_ranges;
    Alcotest.test_case "nak truncated" `Quick test_nak_truncated;
    Alcotest.test_case "ranges_of_sorted" `Quick test_ranges_of_sorted;
    QCheck_alcotest.to_alcotest qcheck_ranges_cover;
    Alcotest.test_case "deadline roundtrip" `Quick test_deadline_roundtrip;
    Alcotest.test_case "backpressure roundtrip" `Quick test_backpressure_roundtrip;
    Alcotest.test_case "buffer advert roundtrip" `Quick test_buffer_advert_roundtrip;
    Alcotest.test_case "encap raw" `Quick test_encap_raw;
    Alcotest.test_case "encap ethernet" `Quick test_encap_ethernet;
    Alcotest.test_case "encap ipv4" `Quick test_encap_ipv4;
    Alcotest.test_case "encap ethernet+ipv4" `Quick test_encap_ethernet_ipv4;
    Alcotest.test_case "encap rejects foreign" `Quick test_encap_rejects_foreign;
    Alcotest.test_case "rewrap grows header" `Quick test_rewrap_grows_header_and_fixes_ip;
  ]
