(* Decoder robustness: every wire decoder must return [Error] (never
   raise, never loop) on arbitrary input — in-network elements parse
   whatever arrives. *)

let arbitrary_bytes =
  QCheck.map Bytes.of_string QCheck.(string_of_size (QCheck.Gen.int_range 0 600))

let never_raises name decode =
  QCheck.Test.make ~name ~count:1000 arbitrary_bytes (fun buf ->
      match decode buf with _ -> true | exception _ -> false)

let qcheck_header = never_raises "Header.decode_bytes total" Mmt.Header.decode_bytes
let qcheck_encap = never_raises "Encap.locate total" Mmt.Encap.locate
let qcheck_fragment = never_raises "Fragment.decode total" Mmt_daq.Fragment.decode
let qcheck_segment = never_raises "Segment.decode total" Mmt_tcp.Segment.decode
let qcheck_nak = never_raises "Nak.decode total" Mmt.Control.Nak.decode

let qcheck_deadline =
  never_raises "Deadline_exceeded.decode total" Mmt.Control.Deadline_exceeded.decode

let qcheck_backpressure =
  never_raises "Backpressure.decode total" Mmt.Control.Backpressure.decode

let qcheck_advert =
  never_raises "Buffer_advert.decode total" Mmt.Control.Buffer_advert.decode

let qcheck_hits =
  never_raises "Lartpc.deserialize_hits total" Mmt_daq.Lartpc.deserialize_hits

(* Mutation fuzz: flip bytes of a VALID frame and feed the in-network
   elements; they must forward or discard, never crash. *)
let qcheck_element_mutation =
  let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0 in
  let base_frame =
    Mmt.Encap.wrap
      (Mmt.Encap.Over_ipv4
         {
           src = Mmt_frame.Addr.Ip.of_octets 10 0 0 1;
           dst = Mmt_frame.Addr.Ip.of_octets 10 0 0 2;
           dscp = 0;
           ttl = 64;
         })
      (Bytes.cat
         (Mmt.Header.encode
            (Mmt.Header.with_sequence (Mmt.Header.mode0 ~experiment) 5))
         (Bytes.make 64 'p'))
  in
  let mode =
    Mmt.Mode.make ~name:"fuzz" ~reliable:(Mmt_frame.Addr.Ip.of_octets 10 0 0 9)
      ~age_budget_us:100 ()
  in
  QCheck.Test.make ~name:"elements survive mutated frames" ~count:500
    QCheck.(pair (int_range 0 (Bytes.length base_frame - 1)) (int_range 0 255))
    (fun (position, value) ->
      let frame = Bytes.copy base_frame in
      Bytes.set frame position (Char.chr value);
      let packet =
        Mmt_sim.Packet.create ~id:0 ~born:Mmt_util.Units.Time.zero frame
      in
      let rewriter = Mmt_innet.Mode_rewriter.create ~mode () in
      let tracker = Mmt_innet.Age_tracker.create () in
      let elements =
        [ Mmt_innet.Mode_rewriter.element rewriter;
          Mmt_innet.Age_tracker.element tracker ]
      in
      match
        Mmt_innet.Element.chain elements ~now:Mmt_util.Units.Time.zero packet
      with
      | Mmt_innet.Element.Forward _ | Mmt_innet.Element.Replicate _
      | Mmt_innet.Element.Discard _ ->
          true
      | exception _ -> false)

(* Receiver total on arbitrary packets. *)
let qcheck_receiver_total =
  QCheck.Test.make ~name:"receiver survives arbitrary packets" ~count:500
    arbitrary_bytes
    (fun buf ->
      let engine = Mmt_sim.Engine.create () in
      let env, _ = Mmt_runtime.Env.loopback engine in
      let receiver =
        Mmt.Receiver.create ~env
          {
            Mmt.Receiver.experiment = Mmt.Experiment_id.make ~experiment:1 ~slice:0;
            nak_delay = Mmt_util.Units.Time.ms 1.;
            nak_retry_timeout = Mmt_util.Units.Time.ms 5.;
            max_nak_retries = 1;
            expected_total = None;
          }
          ~deliver:(fun _ _ -> ())
      in
      let packet = Mmt_sim.Packet.create ~id:0 ~born:Mmt_util.Units.Time.zero buf in
      match
        Mmt.Receiver.on_packet receiver packet;
        Mmt_sim.Engine.run engine
      with
      | () -> true
      | exception _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_header;
      qcheck_encap;
      qcheck_fragment;
      qcheck_segment;
      qcheck_nak;
      qcheck_deadline;
      qcheck_backpressure;
      qcheck_advert;
      qcheck_hits;
      qcheck_element_mutation;
      qcheck_receiver_total;
    ]
