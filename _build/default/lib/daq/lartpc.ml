open Mmt_util
module Cursor = Mmt_wire.Cursor

type config = {
  channels : int;
  samples_per_channel : int;
  pedestal : int;
  noise_sigma : float;
  sample_period_ns : int;
  adc_max : int;
}

let iceberg =
  {
    channels = 64;
    samples_per_channel = 512;
    pedestal = 900;
    noise_sigma = 2.5;
    sample_period_ns = 500;
    adc_max = 16383;
  }

type activity = Quiet | Cosmic | Beam_event | Supernova_burst

let pulses_per_window = function
  | Quiet -> 0.02
  | Cosmic -> 0.3
  | Beam_event -> 1.5
  | Supernova_burst -> 4.0

type hit = {
  channel : int;
  start_tick : int;
  time_over_threshold : int;
  peak_adc : int;
  sum_adc : int;
}

(* A drifting ionization track induces a fast-rising pulse with an
   exponential tail on a collection wire. *)
let add_pulse config waveform rng =
  let start = Rng.int rng ~bound:config.samples_per_channel in
  let amplitude = Rng.int_in_range rng ~lo:25 ~hi:250 in
  let rise = Rng.int_in_range rng ~lo:1 ~hi:3 in
  let tail_tau = Rng.float_in_range rng ~lo:3. ~hi:10. in
  let length = rise + int_of_float (tail_tau *. 5.) in
  for i = 0 to length - 1 do
    let tick = start + i in
    if tick < config.samples_per_channel then begin
      let shape =
        if i < rise then float_of_int (i + 1) /. float_of_int rise
        else exp (-.float_of_int (i - rise) /. tail_tau)
      in
      let value = waveform.(tick) + int_of_float (float_of_int amplitude *. shape) in
      waveform.(tick) <- min value config.adc_max
    end
  done

let generate_waveform config rng ~activity =
  let waveform =
    Array.init config.samples_per_channel (fun _ ->
        let noisy =
          Rng.gaussian rng ~mu:(float_of_int config.pedestal)
            ~sigma:config.noise_sigma
        in
        max 0 (min config.adc_max (int_of_float (Float.round noisy))))
  in
  let pulses = Rng.poisson rng ~mean:(pulses_per_window activity) in
  for _ = 1 to pulses do
    add_pulse config waveform rng
  done;
  waveform

let generate_window config rng ~activity =
  Array.init config.channels (fun _ -> generate_waveform config rng ~activity)

let zero_suppress config ~threshold waveform =
  let cut = config.pedestal + threshold in
  let guard = 2 in
  let n = Array.length waveform in
  let regions = ref [] in
  let i = ref 0 in
  while !i < n do
    if waveform.(!i) > cut then begin
      let start = max 0 (!i - guard) in
      let finish = ref !i in
      while !finish < n - 1 && waveform.(!finish + 1) > cut do
        incr finish
      done;
      let stop = min (n - 1) (!finish + guard) in
      regions := (start, Array.sub waveform start (stop - start + 1)) :: !regions;
      i := stop + 1
    end
    else incr i
  done;
  List.rev !regions

let trigger_primitives config ~threshold ~channel waveform =
  let cut = config.pedestal + threshold in
  let n = Array.length waveform in
  let hits = ref [] in
  let i = ref 0 in
  while !i < n do
    if waveform.(!i) > cut then begin
      let start = !i in
      let peak = ref 0 in
      let total = ref 0 in
      while !i < n && waveform.(!i) > cut do
        let above = waveform.(!i) - config.pedestal in
        if above > !peak then peak := above;
        total := !total + above;
        incr i
      done;
      hits :=
        {
          channel;
          start_tick = start;
          time_over_threshold = !i - start;
          peak_adc = !peak;
          sum_adc = !total;
        }
        :: !hits
    end
    else incr i
  done;
  List.rev !hits

let serialize_window window =
  let channels = Array.length window in
  let samples = if channels = 0 then 0 else Array.length window.(0) in
  let w = Cursor.Writer.create (2 * channels * samples) in
  Array.iter (fun waveform -> Array.iter (fun s -> Cursor.Writer.u16 w s) waveform) window;
  Cursor.Writer.contents w

let deserialize_window ~channels ~samples_per_channel buf =
  if Bytes.length buf <> 2 * channels * samples_per_channel then None
  else begin
    let r = Cursor.Reader.of_bytes buf in
    Some
      (Array.init channels (fun _ ->
           Array.init samples_per_channel (fun _ -> Cursor.Reader.u16 r)))
  end

let serialize_hits hits =
  let w = Cursor.Writer.create (4 + (12 * List.length hits)) in
  Cursor.Writer.u32_int w (List.length hits);
  List.iter
    (fun hit ->
      Cursor.Writer.u16 w hit.channel;
      Cursor.Writer.u16 w hit.start_tick;
      Cursor.Writer.u16 w hit.time_over_threshold;
      Cursor.Writer.u16 w hit.peak_adc;
      Cursor.Writer.u32_int w hit.sum_adc)
    hits;
  Cursor.Writer.contents w

let deserialize_hits buf =
  match
    let r = Cursor.Reader.of_bytes buf in
    let count = Cursor.Reader.u32_int r in
    List.init count (fun _ ->
        let channel = Cursor.Reader.u16 r in
        let start_tick = Cursor.Reader.u16 r in
        let time_over_threshold = Cursor.Reader.u16 r in
        let peak_adc = Cursor.Reader.u16 r in
        let sum_adc = Cursor.Reader.u32_int r in
        { channel; start_tick; time_over_threshold; peak_adc; sum_adc })
  with
  | hits -> Some hits
  | exception Cursor.Out_of_bounds _ -> None

let compression_ratio config ~threshold window =
  let raw = 2 * config.channels * config.samples_per_channel in
  let kept =
    Array.fold_left
      (fun acc waveform ->
        List.fold_left
          (fun acc (_start, samples) -> acc + (2 * Array.length samples) + 4)
          acc
          (zero_suppress config ~threshold waveform))
      0 window
  in
  if kept = 0 then float_of_int raw else float_of_int raw /. float_of_int kept
