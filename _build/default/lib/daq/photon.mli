(** Photon-detection system (PDS) synthesis.

    DUNE's second readout subsystem: silicon photomultipliers watching
    liquid-argon scintillation light.  A readout window is a summed
    SiPM waveform: baseline + dark-count pulses + (optionally) a
    scintillation flash whose photons arrive with argon's fast/slow
    decay structure (~6 ns and ~1.4 µs components).  Photon fragments
    ride the same top-level DAQ header as wire fragments
    ({!Fragment.Photon_detector}), exercising Req 9's shared-header,
    detector-specific-subheader layering. *)

open Mmt_util

type config = {
  sipms : int;  (** photosensors summed into the waveform *)
  samples : int;  (** ticks per readout window *)
  sample_period_ns : int;  (** 16 ns for DUNE's 62.5 MHz PDS digitizers *)
  baseline : int;  (** ADC pedestal *)
  noise_sigma : float;
  dark_rate_hz : float;  (** per-SiPM dark-count rate *)
  spe_amplitude : int;  (** single-photoelectron pulse height, ADC *)
  spe_decay_ns : float;  (** SPE exponential tail *)
  fast_fraction : float;  (** photons in argon's fast component *)
  fast_tau_ns : float;
  slow_tau_ns : float;
  adc_max : int;
}

val dune_pds : config
(** DUNE-like defaults: 48 SiPMs, 1024 ticks at 16 ns. *)

val generate : config -> Rng.t -> photons:int -> int array
(** One readout window containing a scintillation flash of [photons]
    detected photons at a quarter of the window (plus dark counts);
    [photons = 0] is a dark window. *)

val integral : config -> int array -> int
(** Baseline-subtracted integral — proportional to collected light. *)

val estimate_photons : config -> int array -> int
(** Photon-count estimate from the integral and the SPE response. *)

val serialize : int array -> bytes
val deserialize : samples:int -> bytes -> int array option
