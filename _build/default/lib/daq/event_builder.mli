(** Event building: assembling fragments into physics events.

    The first processing stage after the DAQ network (Fig. 1 stage A):
    fragments from every instrument slice that share a trigger number
    are combined into one event.  Incomplete events time out after a
    configurable window — with a lossless DAQ network they complete;
    losses upstream show up here as incomplete events, making this the
    natural integration check for transport reliability (Req 4). *)

open Mmt_util

type event = {
  run : int;
  trigger : int;
  fragments : Fragment.t list;  (** one per slice, slice order *)
  opened_at : Units.Time.t;
  completed_at : Units.Time.t;
}

type stats = {
  complete : int;
  timed_out : int;
  duplicates : int;
  fragments_seen : int;
  pending : int;
}

type t

val create : slices:int list -> timeout:Units.Time.t -> t
(** [slices] is the set of slice numbers every event must cover.
    @raise Invalid_argument on an empty slice list. *)

val add : t -> now:Units.Time.t -> Fragment.t -> event option
(** Returns the completed event when this fragment was the last one
    missing. *)

val sweep : t -> now:Units.Time.t -> int
(** Time out pending events older than the window; returns how many
    were abandoned. *)

val stats : t -> stats
