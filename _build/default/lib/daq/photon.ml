open Mmt_util
module Cursor = Mmt_wire.Cursor

type config = {
  sipms : int;
  samples : int;
  sample_period_ns : int;
  baseline : int;
  noise_sigma : float;
  dark_rate_hz : float;
  spe_amplitude : int;
  spe_decay_ns : float;
  fast_fraction : float;
  fast_tau_ns : float;
  slow_tau_ns : float;
  adc_max : int;
}

let dune_pds =
  {
    sipms = 48;
    samples = 1024;
    sample_period_ns = 16;
    baseline = 800;
    noise_sigma = 1.8;
    dark_rate_hz = 200.;
    spe_amplitude = 18;
    spe_decay_ns = 50.;
    fast_fraction = 0.3;
    fast_tau_ns = 6.;
    slow_tau_ns = 1400.;
    adc_max = 16383;
  }

(* Add one single-photoelectron pulse starting at [tick]. *)
let add_spe config waveform tick =
  let tail_ticks =
    int_of_float (5. *. config.spe_decay_ns /. float_of_int config.sample_period_ns)
  in
  for i = 0 to tail_ticks do
    let at = tick + i in
    if at >= 0 && at < config.samples then begin
      let shape =
        exp
          (-.(float_of_int (i * config.sample_period_ns)) /. config.spe_decay_ns)
      in
      let value =
        waveform.(at) + int_of_float (float_of_int config.spe_amplitude *. shape)
      in
      waveform.(at) <- min value config.adc_max
    end
  done

let generate config rng ~photons =
  let waveform =
    Array.init config.samples (fun _ ->
        let noisy =
          Rng.gaussian rng ~mu:(float_of_int config.baseline)
            ~sigma:config.noise_sigma
        in
        max 0 (min config.adc_max (int_of_float (Float.round noisy))))
  in
  (* Dark counts: Poisson across the window over all SiPMs. *)
  let window_s =
    float_of_int (config.samples * config.sample_period_ns) *. 1e-9
  in
  let dark_mean = config.dark_rate_hz *. window_s *. float_of_int config.sipms in
  let dark = Rng.poisson rng ~mean:dark_mean in
  for _ = 1 to dark do
    add_spe config waveform (Rng.int rng ~bound:config.samples)
  done;
  (* The flash: photon arrival times follow the two-component argon
     scintillation decay, starting a quarter into the window. *)
  let flash_tick = config.samples / 4 in
  for _ = 1 to photons do
    let tau =
      if Rng.bernoulli rng ~p:config.fast_fraction then config.fast_tau_ns
      else config.slow_tau_ns
    in
    let delay_ns = Rng.exponential rng ~rate:(1. /. tau) in
    let tick =
      flash_tick + int_of_float (delay_ns /. float_of_int config.sample_period_ns)
    in
    add_spe config waveform tick
  done;
  waveform

(* Integrate above a ~3-sigma noise cut so rectified baseline noise
   does not masquerade as light. *)
let noise_cut config = max 4 (int_of_float (3. *. config.noise_sigma))

let integral config waveform =
  let cut = config.baseline + noise_cut config in
  Array.fold_left (fun acc s -> if s > cut then acc + (s - config.baseline) else acc)
    0 waveform

(* The expected integral of one SPE pulse (geometric sum of the decay). *)
let spe_integral config =
  let r =
    exp (-.(float_of_int config.sample_period_ns) /. config.spe_decay_ns)
  in
  float_of_int config.spe_amplitude /. (1. -. r)

let estimate_photons config waveform =
  int_of_float (Float.round (float_of_int (integral config waveform) /. spe_integral config))

let serialize waveform =
  let w = Cursor.Writer.create (2 * Array.length waveform) in
  Array.iter (fun s -> Cursor.Writer.u16 w s) waveform;
  Cursor.Writer.contents w

let deserialize ~samples buf =
  if Bytes.length buf <> 2 * samples then None
  else begin
    let r = Cursor.Reader.of_bytes buf in
    Some (Array.init samples (fun _ -> Cursor.Reader.u16 r))
  end
