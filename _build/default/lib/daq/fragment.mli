(** DAQ fragment format.

    Models DUNE's readout convention (Req 9): "DUNE's four detectors
    each have specific headers but they all share a top-level DAQ
    header" [68].  The shared header identifies the run, the trigger,
    the slice (Req 8) and a 64-bit hardware timestamp; a
    detector-specific subheader follows; the detector payload (e.g. a
    serialized {!Lartpc} window) closes the fragment.

    Fragments are the {e messages} the transport carries (Req 7) —
    discrete and timestamped. *)

open Mmt_util

type detector =
  | Wib_ethernet of {
      crate : int;
      slot : int;
      fiber : int;
      first_channel : int;
      channel_count : int;
    }  (** LArTPC warm-interface-board readout *)
  | Photon_detector of { module_id : int; sipm_count : int; gain : int }
  | Beam_instrument of { device : int; sample_rate_khz : int; adc_bits : int }
  | Telescope_alert of {
      alert_id : int;
      ra_udeg : int;  (** right ascension, micro-degrees *)
      dec_udeg : int;  (** declination, micro-degrees, offset-encoded *)
      severity : int;
    }  (** Vera-Rubin-style alert (§ 2.1) *)

type t = {
  run : int;
  trigger : int;  (** trigger/sequence number within the run *)
  timestamp : Units.Time.t;  (** hardware clock at digitization *)
  experiment : Mmt.Experiment_id.t;  (** includes the slice (Req 8) *)
  detector : detector;
  payload : bytes;
}

val header_size : int
(** Shared top-level header: 28 bytes. *)

val subheader_size : int
(** All detector subheaders are padded to 12 bytes. *)

val total_size : t -> int
val detector_kind_code : detector -> int
val encode : t -> bytes
val decode : bytes -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
