(** Catalog of large-instrument experiments (Table 1 of the paper).

    Each entry carries the published DAQ rate plus the workload-shape
    parameters used by the generators: typical message (fragment)
    size, the WAN RTT of the instrument's transfer path (§ 2: 10-100 ms;
    e.g. DUNE's South Dakota → Illinois, Vera Rubin's Chile →
    California), and the instrument's slice count for partitioned
    operation (Req 8). *)

open Mmt_util

type kind =
  | Cms_l1_trigger  (** 63 Tbps [77] *)
  | Dune  (** 120 Tbps [68] *)
  | Ecce_detector  (** 100 Tbps [13] *)
  | Mu2e  (** 160 Gbps [29] *)
  | Vera_rubin  (** 400 Gbps [38] *)

type t = {
  kind : kind;
  name : string;
  id : Mmt.Experiment_id.t;
  daq_rate : Units.Rate.t;  (** acquisition rate from Table 1 *)
  message_size : Units.Size.t;  (** typical fragment payload *)
  wan_rtt : Units.Time.t;  (** instrument -> analysis-facility RTT *)
  slices : int;  (** partitions for simultaneous experiments *)
  alert_stream : Units.Rate.t option;
      (** side stream for rapid dissemination, e.g. Vera Rubin's
          5.4 Gbps alert burst (§ 2.1) *)
}

val all : t list
val find : kind -> t
val find_by_name : string -> t option
val kind_to_string : kind -> string

val scaled_rate : t -> scale:float -> Units.Rate.t
(** The catalog rate multiplied by [scale] — experiments in this
    repository run the paper's workload {e shapes} at
    simulator-feasible rates; EXPERIMENTS.md records the scale used by
    each reproduction. *)

val messages_per_second : t -> scale:float -> float
val pp : Format.formatter -> t -> unit
