(** DAQ workload generation.

    Produces the paper's traffic profile (§ 2.1): elephant flows of
    fixed-size, timestamped fragments at a known, capacity-planned rate
    — "traffic consists of elephant flows with a regular shape (size
    and arrival rate)".  Profiles cover steady streaming (telescope
    capture), periodic trigger windows (accelerator-driven
    experiments), Poisson physics events, and a supernova burst
    (sudden sustained multiplier — DUNE's integration driver, Req 10).

    Rates from Table 1 are scaled by [scale] to simulator-feasible
    magnitudes; shape (fragment size, burstiness, relative rates) is
    preserved and the scale is recorded in every report. *)

open Mmt_util

type profile =
  | Steady
  | Periodic_trigger of { window : Units.Time.t; duty : float }
      (** active for [duty] of each [window], off otherwise; the rate
          within a burst is raised so the average matches the catalog *)
  | Poisson_events of { mean_rate_hz : float; fragments_per_event : int }
      (** physics events arrive as a Poisson process; each event emits
          a back-to-back fragment train *)
  | Supernova of {
      onset : Units.Time.t;
      duration : Units.Time.t;
      multiplier : float;
    }  (** steady baseline with a sustained burst *)
  | Replay of (Units.Time.t * int) list
      (** trace-driven: emit one fragment of each recorded (time,
          payload-bytes) pair — how a captured DAQ sample (e.g. the
          pilot's ICEBERG traffic) drives the simulator.  The payload
          field sets content generation for non-[Synthetic] payloads;
          recorded sizes override [Synthetic] sizes. *)

type payload =
  | Synthetic of Units.Size.t  (** patterned filler of the given size *)
  | Raw_window of Lartpc.config * Lartpc.activity
  | Trigger_primitives of Lartpc.config * Lartpc.activity * int
      (** threshold; payload is the serialized hit list *)
  | Photon_flash of Photon.config * int
      (** photon-detector windows with Poisson flashes of the given
          mean photon count *)

type config = {
  experiment : Experiment.t;
  scale : float;  (** catalog-rate multiplier, e.g. 1e-4 *)
  profile : profile;
  payload : payload;
  run : int;
  slice : int;  (** which instrument partition this stream is (Req 8) *)
}

type stats = {
  fragments_emitted : int;
  bytes_emitted : int;  (** encoded fragment bytes *)
  events : int;  (** profile-level events (triggers, bursts) *)
}

type t

val start :
  engine:Mmt_sim.Engine.t ->
  rng:Rng.t ->
  config ->
  emit:(Fragment.t -> unit) ->
  until:Units.Time.t ->
  t
(** Schedules fragment emission on the engine from now to [until].
    @raise Invalid_argument on a non-positive scale or duty outside
    (0, 1]. *)

val stop : t -> unit
(** Cease scheduling new fragments. *)

val stats : t -> stats

val offered_rate : t -> over:Units.Time.t -> Units.Rate.t
(** Average emitted rate across [over] (encoded bytes). *)

val expected_interval : config -> Units.Time.t
(** Steady-state inter-fragment gap implied by the scaled rate. *)

val synthesize_capture :
  rng:Rng.t ->
  experiment:Experiment.t ->
  scale:float ->
  duration:Units.Time.t ->
  (Units.Time.t * int) list
(** Build a replayable capture with the experiment's shape: fragment
    sizes jittered around the catalog size, inter-arrival jitter around
    the scaled rate — a stand-in for a recorded ICEBERG sample to feed
    {!Replay}. *)
