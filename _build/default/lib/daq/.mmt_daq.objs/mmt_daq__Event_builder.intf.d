lib/daq/event_builder.mli: Fragment Mmt_util Units
