lib/daq/event_builder.ml: Fragment Hashtbl List Mmt Mmt_util Units
