lib/daq/lartpc.mli: Mmt_util Rng
