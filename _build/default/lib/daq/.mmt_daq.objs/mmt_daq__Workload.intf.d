lib/daq/workload.mli: Experiment Fragment Lartpc Mmt_sim Mmt_util Photon Rng Units
