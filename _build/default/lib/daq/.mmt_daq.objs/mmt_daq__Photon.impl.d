lib/daq/photon.ml: Array Bytes Float Mmt_util Mmt_wire Rng
