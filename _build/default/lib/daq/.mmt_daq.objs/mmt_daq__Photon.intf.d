lib/daq/photon.mli: Mmt_util Rng
