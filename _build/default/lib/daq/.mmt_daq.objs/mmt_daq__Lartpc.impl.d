lib/daq/lartpc.ml: Array Bytes Float List Mmt_util Mmt_wire Rng
