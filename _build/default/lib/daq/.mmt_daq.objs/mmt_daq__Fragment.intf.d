lib/daq/fragment.mli: Format Mmt Mmt_util Units
