lib/daq/experiment.mli: Format Mmt Mmt_util Units
