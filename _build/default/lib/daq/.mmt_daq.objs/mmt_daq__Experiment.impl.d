lib/daq/experiment.ml: Format List Mmt Mmt_util String Units
