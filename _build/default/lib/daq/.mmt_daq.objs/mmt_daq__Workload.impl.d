lib/daq/workload.ml: Array Bytes Experiment Fragment Int64 Lartpc List Mmt Mmt_sim Mmt_util Photon Rng Units
