lib/daq/fragment.ml: Bytes Format Mmt Mmt_util Mmt_wire Printf Units
