open Mmt_util

type kind = Cms_l1_trigger | Dune | Ecce_detector | Mu2e | Vera_rubin

type t = {
  kind : kind;
  name : string;
  id : Mmt.Experiment_id.t;
  daq_rate : Units.Rate.t;
  message_size : Units.Size.t;
  wan_rtt : Units.Time.t;
  slices : int;
  alert_stream : Units.Rate.t option;
}

let kind_to_string = function
  | Cms_l1_trigger -> "CMS L1 Trigger"
  | Dune -> "DUNE"
  | Ecce_detector -> "ECCE detector"
  | Mu2e -> "Mu2e"
  | Vera_rubin -> "Vera Rubin"

let experiment_number = function
  | Cms_l1_trigger -> 1
  | Dune -> 2
  | Ecce_detector -> 3
  | Mu2e -> 4
  | Vera_rubin -> 5

let make kind ~daq_rate ~message_size ~wan_rtt ~slices ?alert_stream () =
  {
    kind;
    name = kind_to_string kind;
    id = Mmt.Experiment_id.make ~experiment:(experiment_number kind) ~slice:0;
    daq_rate;
    message_size;
    wan_rtt;
    slices;
    alert_stream;
  }

let all =
  [
    (* CMS reads out through custom electronics into jumbo-frame-sized
       event fragments; RTT is CERN -> Tier-1s. *)
    make Cms_l1_trigger ~daq_rate:(Units.Rate.tbps 63.)
      ~message_size:(Units.Size.bytes 8192)
      ~wan_rtt:(Units.Time.ms 20.) ~slices:4 ();
    (* DUNE: Ethernet readout, four detector modules, South Dakota ->
       Fermilab (~13 ms). *)
    make Dune ~daq_rate:(Units.Rate.tbps 120.)
      ~message_size:(Units.Size.bytes 7200)
      ~wan_rtt:(Units.Time.ms 13.) ~slices:4 ();
    make Ecce_detector ~daq_rate:(Units.Rate.tbps 100.)
      ~message_size:(Units.Size.bytes 8192)
      ~wan_rtt:(Units.Time.ms 25.) ~slices:2 ();
    (* Mu2e carries DAQ data directly over Ethernet frames (§ 4). *)
    make Mu2e ~daq_rate:(Units.Rate.gbps 160.)
      ~message_size:(Units.Size.bytes 4096)
      ~wan_rtt:(Units.Time.ms 15.) ~slices:1 ();
    (* Vera Rubin: nightly 30 TB capture plus the 5.4 Gbps alert burst
       stream (§ 2.1); Chile -> California is ~70 ms. *)
    make Vera_rubin ~daq_rate:(Units.Rate.gbps 400.)
      ~message_size:(Units.Size.bytes 8192)
      ~wan_rtt:(Units.Time.ms 70.) ~slices:1
      ~alert_stream:(Units.Rate.gbps 5.4) ();
  ]

let find kind = List.find (fun t -> t.kind = kind) all

let find_by_name name =
  List.find_opt
    (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name)
    all

let scaled_rate t ~scale = Units.Rate.scale t.daq_rate scale

let messages_per_second t ~scale =
  Units.Rate.to_bps (scaled_rate t ~scale)
  /. float_of_int (Units.Size.to_bits t.message_size)

let pp fmt t =
  Format.fprintf fmt "%s (%a, %a fragments, %a RTT, %d slices)" t.name
    Units.Rate.pp t.daq_rate Units.Size.pp t.message_size Units.Time.pp
    t.wan_rtt t.slices
