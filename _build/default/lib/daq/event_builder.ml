open Mmt_util

type event = {
  run : int;
  trigger : int;
  fragments : Fragment.t list;
  opened_at : Units.Time.t;
  completed_at : Units.Time.t;
}

type stats = {
  complete : int;
  timed_out : int;
  duplicates : int;
  fragments_seen : int;
  pending : int;
}

type pending = {
  p_opened_at : Units.Time.t;
  by_slice : (int, Fragment.t) Hashtbl.t;
}

type t = {
  slices : int list;
  timeout : Units.Time.t;
  open_events : (int * int, pending) Hashtbl.t; (* keyed by (run, trigger) *)
  mutable complete : int;
  mutable timed_out : int;
  mutable duplicates : int;
  mutable fragments_seen : int;
}

let create ~slices ~timeout =
  if slices = [] then invalid_arg "Event_builder.create: no slices";
  {
    slices = List.sort_uniq compare slices;
    timeout;
    open_events = Hashtbl.create 256;
    complete = 0;
    timed_out = 0;
    duplicates = 0;
    fragments_seen = 0;
  }

let add t ~now fragment =
  t.fragments_seen <- t.fragments_seen + 1;
  let slice = Mmt.Experiment_id.slice fragment.Fragment.experiment in
  let key = (fragment.Fragment.run, fragment.Fragment.trigger) in
  let pending =
    match Hashtbl.find_opt t.open_events key with
    | Some pending -> pending
    | None ->
        let pending = { p_opened_at = now; by_slice = Hashtbl.create 8 } in
        Hashtbl.replace t.open_events key pending;
        pending
  in
  if Hashtbl.mem pending.by_slice slice then begin
    t.duplicates <- t.duplicates + 1;
    None
  end
  else begin
    Hashtbl.replace pending.by_slice slice fragment;
    let have_all =
      List.for_all (fun s -> Hashtbl.mem pending.by_slice s) t.slices
    in
    if have_all then begin
      Hashtbl.remove t.open_events key;
      t.complete <- t.complete + 1;
      let fragments =
        List.map (fun s -> Hashtbl.find pending.by_slice s) t.slices
      in
      Some
        {
          run = fst key;
          trigger = snd key;
          fragments;
          opened_at = pending.p_opened_at;
          completed_at = now;
        }
    end
    else None
  end

let sweep t ~now =
  let stale =
    Hashtbl.fold
      (fun key pending acc ->
        if Units.Time.(Units.Time.diff now pending.p_opened_at > t.timeout) then
          key :: acc
        else acc)
      t.open_events []
  in
  List.iter (Hashtbl.remove t.open_events) stale;
  t.timed_out <- t.timed_out + List.length stale;
  List.length stale

let stats t =
  {
    complete = t.complete;
    timed_out = t.timed_out;
    duplicates = t.duplicates;
    fragments_seen = t.fragments_seen;
    pending = Hashtbl.length t.open_events;
  }
