(** Synthetic liquid-argon TPC (LArTPC) detector data.

    Stands in for the pilot's two data sources (§ 5.4): the ICEBERG
    DUNE prototype (a LArTPC) and "synthetic DUNE DAQ data that
    simulates the neutrino generation by different physical events".

    A readout window per wire channel is a waveform of ADC samples:
    a pedestal baseline, Gaussian electronics noise, and
    track-induced pulses (fast rise, exponential tail).  On top of the
    raw waveforms the module implements the two standard DAQ
    reductions: zero suppression and trigger primitives (hits). *)

open Mmt_util

type config = {
  channels : int;  (** wires per fragment *)
  samples_per_channel : int;  (** ticks per readout window *)
  pedestal : int;  (** ADC baseline *)
  noise_sigma : float;  (** electronics noise, ADC counts *)
  sample_period_ns : int;  (** 500 ns for DUNE's 2 MHz digitization *)
  adc_max : int;  (** saturation value, e.g. 16383 for 14-bit *)
}

val iceberg : config
(** ICEBERG-prototype-like geometry: 64 channels x 512 ticks. *)

type activity =
  | Quiet  (** radiological background only *)
  | Cosmic  (** a few cosmic-ray tracks per window *)
  | Beam_event  (** accelerator-driven neutrino interaction *)
  | Supernova_burst  (** sustained high activity across channels *)

val pulses_per_window : activity -> float
(** Mean track-pulse count per channel window. *)

type hit = {
  channel : int;
  start_tick : int;
  time_over_threshold : int;  (** ticks *)
  peak_adc : int;  (** above pedestal *)
  sum_adc : int;  (** integral above pedestal *)
}

val generate_waveform : config -> Rng.t -> activity:activity -> int array
(** One channel's readout window. *)

val generate_window : config -> Rng.t -> activity:activity -> int array array
(** All channels ([channels] waveforms). *)

val zero_suppress :
  config -> threshold:int -> int array -> (int * int array) list
(** [(start_tick, kept_samples)] regions where the signal exceeds
    pedestal + threshold, with 2 guard ticks either side. *)

val trigger_primitives :
  config -> threshold:int -> channel:int -> int array -> hit list
(** Hit finding over one waveform. *)

val serialize_window : int array array -> bytes
(** Big-endian u16 samples, channel-major — the fragment payload. *)

val deserialize_window :
  channels:int -> samples_per_channel:int -> bytes -> int array array option

val serialize_hits : hit list -> bytes
val deserialize_hits : bytes -> hit list option

val compression_ratio : config -> threshold:int -> int array array -> float
(** Raw bytes over zero-suppressed bytes for a window — how much DAQ
    preprocessing shrinks the stream before the WAN. *)
