(** Time-binned throughput measurement.

    Record byte arrivals as they happen; read back a rate time-series
    (for ramp-up curves, burst visibility) and aggregates. *)

open Mmt_util

type t

val create : bin:Units.Time.t -> t
(** @raise Invalid_argument on a zero bin. *)

val record : t -> now:Units.Time.t -> bytes:int -> unit
val total_bytes : t -> int

val series : t -> (Units.Time.t * Units.Rate.t) list
(** [(bin_start, average_rate_in_bin)] in time order; empty bins
    between activity are included as zero. *)

val peak : t -> Units.Rate.t
val average : t -> over:Units.Time.t -> Units.Rate.t
