(** Experiment reports: paper-expectation vs measured value.

    Every table/figure reproduction emits one of these; the rendered
    form is what lands in bench output and EXPERIMENTS.md.  A row's
    [ok] records whether the measured value matches the paper's
    {e shape} claim (who wins, rough factor, crossover side) — absolute
    numbers are not expected to match a hardware testbed. *)

type row = {
  metric : string;
  expected : string;  (** the paper's claim, with its § reference *)
  measured : string;
  ok : bool option;  (** [None] for informational rows *)
}

type t = {
  id : string;  (** experiment id from DESIGN.md, e.g. "E-F3" *)
  title : string;
  note : string option;  (** e.g. the rate scale used *)
  rows : row list;
}

val info : metric:string -> measured:string -> row
val check : metric:string -> expected:string -> measured:string -> bool -> row
val render : t -> string
val print : t -> unit
val all_ok : t -> bool
(** True when every checked row passed. *)
