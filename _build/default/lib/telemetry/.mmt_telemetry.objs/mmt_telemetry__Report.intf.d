lib/telemetry/report.mli:
