lib/telemetry/report.ml: List Mmt_util Printf Table
