lib/telemetry/flow_meter.mli: Mmt_util Units
