lib/telemetry/flow_meter.ml: Hashtbl Int64 List Mmt_util Option Units
