open Mmt_util

type row = {
  metric : string;
  expected : string;
  measured : string;
  ok : bool option;
}

type t = {
  id : string;
  title : string;
  note : string option;
  rows : row list;
}

let info ~metric ~measured = { metric; expected = "-"; measured; ok = None }

let check ~metric ~expected ~measured ok = { metric; expected; measured; ok = Some ok }

let render t =
  let table =
    Table.create
      ~title:(Printf.sprintf "%s: %s" t.id t.title)
      ~columns:
        [
          ("metric", Table.Left);
          ("paper", Table.Left);
          ("measured", Table.Left);
          ("shape", Table.Left);
        ]
      ()
  in
  List.iter
    (fun row ->
      let verdict =
        match row.ok with None -> "" | Some true -> "OK" | Some false -> "MISMATCH"
      in
      Table.add_row table [ row.metric; row.expected; row.measured; verdict ])
    t.rows;
  let body = Table.render table in
  match t.note with
  | Some note -> body ^ "note: " ^ note ^ "\n"
  | None -> body

let print t =
  print_string (render t);
  print_newline ()

let all_ok t =
  List.for_all (fun row -> match row.ok with Some false -> false | _ -> true) t.rows
