(** In-network deadline enforcement (§ 5.3, pilot mode 3).

    "Timely-behavior (Req 3) is ensured by explicit transport deadlines
    that provide a signal for congestion and an input to active queue
    management."  Deployed at (or near) the destination, this element
    checks the deadline of timely packets and applies a policy:

    - [Mark]: count and forward (the receiver sees lateness itself);
    - [Drop_expired]: expired data is useless — shed it in-network;
    - [Notify]: send a deadline-exceeded message toward the header's
      notification address and forward the packet. *)

type policy = Mark | Drop_expired | Notify

type stats = {
  checked : int;  (** timely data packets examined *)
  expired : int;
  dropped : int;
  notices_sent : int;
}

type t

val create : env:Mmt_runtime.Env.t -> policy:policy -> unit -> t
val element : t -> Element.t
val stats : t -> stats
