(** In-network processing elements.

    An element is one per-packet function hosted on a switch or
    smartNIC pipeline: it may rewrite the packet, replicate it, drop
    it, and emit control messages (through the environment it was
    created with).  Elements compose into a chain inside a
    {!Switch}. *)

open Mmt_util

type outcome =
  | Forward of Mmt_sim.Packet.t  (** possibly rewritten in place *)
  | Replicate of Mmt_sim.Packet.t list
      (** all copies continue down the chain / out the port *)
  | Discard of string

type t = {
  name : string;
  program : Op.program;
      (** declared per-packet operations; checked P4-realizable *)
  process : now:Units.Time.t -> Mmt_sim.Packet.t -> outcome;
}

val passthrough : t
(** Forwards untouched; the empty pipeline. *)

val chain : t list -> now:Units.Time.t -> Mmt_sim.Packet.t -> outcome
(** Run elements left to right.  [Replicate] fans the remaining chain
    over every copy; the first [Discard] wins for that copy. *)

val total_ops : t list -> int
