lib/innet/resource_map.mli: Addr Mmt Mmt_frame Mmt_util Units
