lib/innet/alert_generator.mli: Addr Element Mmt_frame Mmt_runtime Mmt_util
