lib/innet/backpressure_monitor.ml: Bytes Element Lazy Mmt Mmt_runtime Mmt_sim Mmt_util Op Units
