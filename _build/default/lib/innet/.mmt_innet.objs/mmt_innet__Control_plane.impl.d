lib/innet/control_plane.ml: Addr Bytes Hashtbl List Mmt Mmt_frame Mmt_runtime Mmt_sim Mmt_util Option Resource_map Units
