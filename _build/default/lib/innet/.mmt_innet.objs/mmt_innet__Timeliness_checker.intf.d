lib/innet/timeliness_checker.mli: Element Mmt_runtime
