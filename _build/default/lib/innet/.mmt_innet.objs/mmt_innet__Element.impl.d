lib/innet/element.ml: List Mmt_sim Mmt_util Op Units
