lib/innet/mode_rewriter.mli: Element Mmt Mmt_util
