lib/innet/mode_rewriter.ml: Bytes Element Hashtbl Lazy Mmt Mmt_sim Mmt_util Op Option Units
