lib/innet/switch.ml: Element List Mmt_sim Mmt_util Op Units
