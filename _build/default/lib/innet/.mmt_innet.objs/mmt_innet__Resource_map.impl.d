lib/innet/resource_map.ml: Addr Hashtbl List Mmt Mmt_frame Mmt_util Units
