lib/innet/control_plane.mli: Addr Mmt Mmt_frame Mmt_runtime Mmt_sim Mmt_util Resource_map Units
