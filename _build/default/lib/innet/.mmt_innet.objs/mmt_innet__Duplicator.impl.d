lib/innet/duplicator.ml: Addr Bytes Char Element Lazy List Mmt Mmt_frame Mmt_runtime Mmt_sim Op
