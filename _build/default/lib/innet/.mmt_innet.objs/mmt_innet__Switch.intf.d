lib/innet/switch.mli: Element Mmt_sim Mmt_util Units
