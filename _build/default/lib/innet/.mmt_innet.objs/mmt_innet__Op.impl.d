lib/innet/op.ml: List Printf String
