lib/innet/planner.ml: Addr Mmt Mmt_frame Mmt_util Mode_rewriter Option Resource_map Result Units
