lib/innet/age_tracker.mli: Element
