lib/innet/timeliness_checker.ml: Addr Bytes Element Lazy Mmt Mmt_frame Mmt_runtime Mmt_sim Mmt_util Op Option Units
