lib/innet/alert_generator.ml: Addr Bytes Element Lazy List Mmt Mmt_daq Mmt_frame Mmt_runtime Mmt_sim Mmt_util Op Units
