lib/innet/op.mli:
