lib/innet/duplicator.mli: Addr Element Mmt_frame Mmt_runtime
