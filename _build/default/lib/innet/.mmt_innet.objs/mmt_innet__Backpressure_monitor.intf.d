lib/innet/backpressure_monitor.mli: Element Mmt_runtime Mmt_util Units
