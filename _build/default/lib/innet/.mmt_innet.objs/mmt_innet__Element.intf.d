lib/innet/element.mli: Mmt_sim Mmt_util Op Units
