lib/innet/planner.mli: Addr Mmt Mmt_frame Mmt_util Mode_rewriter Resource_map Units
