lib/innet/age_tracker.ml: Element Lazy Mmt Mmt_sim Op
