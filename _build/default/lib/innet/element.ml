open Mmt_util

type outcome =
  | Forward of Mmt_sim.Packet.t
  | Replicate of Mmt_sim.Packet.t list
  | Discard of string

type t = {
  name : string;
  program : Op.program;
  process : now:Units.Time.t -> Mmt_sim.Packet.t -> outcome;
}

let passthrough =
  {
    name = "passthrough";
    program = { Op.name = "passthrough"; ops = [] };
    process = (fun ~now:_ packet -> Forward packet);
  }

let rec chain elements ~now packet =
  match elements with
  | [] -> Forward packet
  | element :: rest -> (
      match element.process ~now packet with
      | Discard _ as discard -> discard
      | Forward packet -> chain rest ~now packet
      | Replicate copies ->
          let survivors =
            List.concat_map
              (fun copy ->
                match chain rest ~now copy with
                | Forward p -> [ p ]
                | Replicate ps -> ps
                | Discard _ -> [])
              copies
          in
          Replicate survivors)

let total_ops elements =
  List.fold_left (fun acc e -> acc + Op.op_count e.program) 0 elements
