(** Mid-path age accumulation (§ 5.4).

    "An element updates an 'age' field, and it additionally updates an
    'aged' flag if a maximum age threshold was exceeded by the time the
    packet reached that network element."  The update is in-place byte
    surgery on the age extension — no reserialization — matching what
    a pipeline ALU does. *)

type stats = {
  touched : int;
  aged_marked : int;  (** packets first marked aged at this element *)
  untracked : int;  (** data packets without the age feature *)
}

type t

val create : unit -> t
val element : t -> Element.t
val stats : t -> stats
