(** Congestion relay toward the sender (§ 5.1, Fig. 3 point 4).

    "If an element receives signals of downstream congestion or loss,
    it can relay a back-pressure signal to the sender."  This element
    watches a queue-depth probe (typically the downstream link's output
    queue); when depth crosses the high watermark it sends a
    back-pressure control message to the address carried in the data
    header, advising a pace; when depth falls below the low watermark
    it sends a clear (severity 0).  Signals are rate-limited. *)

open Mmt_util

type config = {
  high_watermark : Units.Size.t;
  low_watermark : Units.Size.t;
  advised_pace_mbps : int;  (** pace to advise while congested *)
  min_signal_gap : Units.Time.t;
}

type stats = {
  signals_sent : int;
  clears_sent : int;
  congested : bool;  (** current state *)
}

type t

val create :
  env:Mmt_runtime.Env.t ->
  config ->
  queue_depth:(unit -> Units.Size.t) ->
  unit ->
  t
(** @raise Invalid_argument if the low watermark exceeds the high. *)

val element : t -> Element.t
val stats : t -> stats
