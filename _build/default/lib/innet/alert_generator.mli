(** In-network multi-domain alert generation (§ 6, challenge 2).

    "DPDK-capable or FPGA resources could be used to generate
    multi-domain alerts from raw DAQ data": this element inspects the
    DAQ fragments inside passing data packets — trigger-primitive (hit)
    payloads — and when the summed collected charge of a fragment
    crosses a threshold (a supernova-burst-like excess), it emits a
    compact {!Mmt_daq.Fragment.Telescope_alert} message directly toward
    subscribed instruments, without waiting for the analysis facility.

    Its declared program contains {!Op.Payload_access}, so it is NOT
    P4-realizable: {!Switch.attach} only accepts it on a device marked
    [~allow_payload:true] (the Alveo/DPDK class) — the discipline the
    paper draws between header processing on switches and payload
    processing on smartNICs. *)

open Mmt_frame

type config = {
  sum_adc_threshold : int;
      (** total collected charge in one fragment that triggers an alert *)
  subscribers : Addr.Ip.t list;
  min_gap : Mmt_util.Units.Time.t;  (** alert rate limit *)
}

type stats = {
  inspected : int;  (** data packets whose payload was examined *)
  triggers_seen : int;  (** fragments crossing the threshold *)
  alerts_emitted : int;
}

type t

val create : env:Mmt_runtime.Env.t -> config -> t
val element : t -> Element.t
val stats : t -> stats
