type op =
  | Extract of string
  | Set_field of string
  | Add_to_field of string
  | Copy_field of string * string
  | Compare of string
  | Set_flag of string
  | Register_read of string
  | Register_write of string
  | Emit_digest of string
  | Clone of string
  | Payload_access of string
  | Float_op of string

type program = { name : string; ops : op list }

let default_max_ops = 48

let op_count program = List.length program.ops

let realizable ?(max_ops = default_max_ops) ?(allow_payload = false) program =
  let forbidden =
    List.filter_map
      (fun op ->
        match op with
        | Payload_access what ->
            if allow_payload then None else Some ("payload access: " ^ what)
        | Float_op what -> Some ("floating point: " ^ what)
        | Extract _ | Set_field _ | Add_to_field _ | Copy_field _ | Compare _
        | Set_flag _ | Register_read _ | Register_write _ | Emit_digest _
        | Clone _ ->
            None)
      program.ops
  in
  match forbidden with
  | reason :: _ ->
      Error (Printf.sprintf "%s is not P4-realizable (%s)" program.name reason)
  | [] ->
      if op_count program > max_ops then
        Error
          (Printf.sprintf "%s exceeds the per-packet op budget (%d > %d)"
             program.name (op_count program) max_ops)
      else Ok ()

let describe_op = function
  | Extract f -> "extract " ^ f
  | Set_field f -> "set " ^ f
  | Add_to_field f -> "add " ^ f
  | Copy_field (a, b) -> Printf.sprintf "copy %s -> %s" a b
  | Compare f -> "compare " ^ f
  | Set_flag f -> "flag " ^ f
  | Register_read r -> "reg-read " ^ r
  | Register_write r -> "reg-write " ^ r
  | Emit_digest d -> "digest " ^ d
  | Clone target -> "clone " ^ target
  | Payload_access what -> "PAYLOAD " ^ what
  | Float_op what -> "FLOAT " ^ what

let describe program =
  Printf.sprintf "%s: %s" program.name
    (String.concat "; " (List.map describe_op program.ops))
