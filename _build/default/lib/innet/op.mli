(** A P4-realizability vocabulary for in-network programs.

    Each element declares what it does per packet as a list of these
    primitive operations.  {!realizable} enforces the constraints the
    paper sets for its in-network support (§ 5, § 5.3): "conservative,
    header-based processing, using features that existing P4 hardware
    supports well [25]" — fixed-width integer header fields, bounded
    per-packet work, stateful registers, digests to the control plane;
    no payload access, no floating point, no loops.

    The OCaml implementations of the elements are the executable
    semantics; the declared programs are checked in tests so that every
    shipped element stays within what a Tofino-class pipeline can do. *)

type op =
  | Extract of string  (** parse a named fixed-width header field *)
  | Set_field of string
  | Add_to_field of string  (** ALU add-immediate / add-register *)
  | Copy_field of string * string
  | Compare of string  (** branch on a field against a constant/register *)
  | Set_flag of string
  | Register_read of string  (** per-stage stateful memory, e.g. a counter *)
  | Register_write of string
  | Emit_digest of string  (** generate a control-plane message *)
  | Clone of string  (** packet replication via the traffic manager *)
  | Payload_access of string  (** NOT realizable: rejected *)
  | Float_op of string  (** NOT realizable: rejected, cf. Fingerhut [25] *)

type program = { name : string; ops : op list }

val default_max_ops : int
(** 48 — a conservative bound on match-action operations per packet
    for a single pipeline pass. *)

val realizable : ?max_ops:int -> ?allow_payload:bool -> program -> (unit, string) result
(** [allow_payload] (default false) models DPDK/FPGA-class devices
    (§ 6, challenge 2: "DPDK-capable or FPGA resources could be used to
    generate multi-domain alerts from raw DAQ data"): payload access is
    then permitted, floating point still is not. *)

val op_count : program -> int
val describe : program -> string
