lib/wire/cursor.ml: Bytes Char Int32 Printf
