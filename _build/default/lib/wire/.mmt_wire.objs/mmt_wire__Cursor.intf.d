lib/wire/cursor.mli:
