open Mmt_util

let lartpc_small =
  (* Keep fragments detector-shaped but modest: 16 channels x 128 ticks
     of real synthesized waveform = 4 KiB payloads. *)
  { Mmt_daq.Lartpc.iceberg with Mmt_daq.Lartpc.channels = 16; samples_per_channel = 128 }

let pilot_config ~profile ~scale =
  {
    Mmt_pilot.Pilot.default_config with
    Mmt_pilot.Pilot.profile;
    scale;
    fragment_count = 1500;
    payload = Mmt_daq.Workload.Raw_window (lartpc_small, Mmt_daq.Lartpc.Beam_event);
    wan_loss = 0.003;
    wan_corrupt = 0.001;
    age_budget_us = 30_000;
  }

let run_variant ~profile ~scale =
  let pilot = Mmt_pilot.Pilot.build (pilot_config ~profile ~scale) in
  Mmt_pilot.Pilot.run pilot;
  (Mmt_pilot.Pilot.results pilot, Mmt_pilot.Pilot.receiver pilot)

(* Saturation check: offered load near the physical link rate. *)
let saturation_goodput ~profile ~offered_scale =
  let config =
    {
      (pilot_config ~profile ~scale:offered_scale) with
      Mmt_pilot.Pilot.fragment_count = 3000;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 7168);
      wan_loss = 0.;
      wan_corrupt = 0.;
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  (Mmt_pilot.Pilot.results pilot).Mmt_pilot.Pilot.goodput

let variant_table name (results : Mmt_pilot.Pilot.results) receiver =
  let r = results.Mmt_pilot.Pilot.receiver in
  let ages = Mmt.Receiver.age_summary receiver in
  [
    name;
    string_of_int results.Mmt_pilot.Pilot.emitted;
    string_of_int r.Mmt.Receiver.delivered;
    string_of_int r.Mmt.Receiver.gaps_detected;
    string_of_int r.Mmt.Receiver.recovered;
    string_of_int r.Mmt.Receiver.lost;
    string_of_int results.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.frames_resent;
    string_of_int r.Mmt.Receiver.aged;
    Printf.sprintf "%.0f us" (Stats.Summary.median ages);
    Units.Rate.to_string results.Mmt_pilot.Pilot.goodput;
    (match r.Mmt.Receiver.completion with
    | Some t -> Units.Time.to_string t
    | None -> "-");
  ]

(* Req 8/9: four instrument slices streaming simultaneously, reunited
   into physics events at DTN 2. *)
let sliced_run () =
  let config =
    {
      (pilot_config ~profile:Mmt_pilot.Profile.physical_100gbe ~scale:1e-4) with
      Mmt_pilot.Pilot.slices = 4;
      fragment_count = 400;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 2048);
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  Mmt_pilot.Pilot.results pilot

let run () =
  let physical, physical_receiver =
    run_variant ~profile:Mmt_pilot.Profile.physical_100gbe ~scale:1e-4
  in
  let fabric, fabric_receiver =
    run_variant ~profile:Mmt_pilot.Profile.fabric_virtual ~scale:1e-4
  in
  let table =
    Table.create ~title:"Fig. 4 pilot study: both variants (LArTPC data)"
      ~columns:
        [
          ("variant", Table.Left);
          ("emitted", Table.Right);
          ("delivered", Table.Right);
          ("gaps", Table.Right);
          ("recovered", Table.Right);
          ("lost", Table.Right);
          ("DTN1 resends", Table.Right);
          ("aged", Table.Right);
          ("median age", Table.Right);
          ("goodput", Table.Right);
          ("completion", Table.Right);
        ]
      ()
  in
  Table.add_row table (variant_table "physical-100gbe" physical physical_receiver);
  Table.add_row table (variant_table "fabric-virtual" fabric fabric_receiver);
  (* Age distribution at the destination (physical variant): the bulk
     of frames sit at one-way latency; the recovered tail is visible. *)
  let age_histogram =
    let h = Stats.Histogram.create ~lo:0. ~hi:40_000. ~buckets:8 in
    Array.iter (Stats.Histogram.add h)
      (Stats.Summary.to_array (Mmt.Receiver.age_summary physical_receiver));
    "age at destination, physical variant (us):\n" ^ Stats.Histogram.render h ~width:40
  in
  (* Saturation: offered ~86 Gbps into 100 GbE vs the same into 25 GbE. *)
  let physical_peak =
    saturation_goodput ~profile:Mmt_pilot.Profile.physical_100gbe ~offered_scale:7.2e-4
  in
  let fabric_peak =
    saturation_goodput ~profile:Mmt_pilot.Profile.fabric_virtual ~offered_scale:7.2e-4
  in
  let all_recovered (r : Mmt_pilot.Pilot.results) =
    r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered = 1500
    && r.Mmt_pilot.Pilot.receiver.Mmt.Receiver.lost = 0
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"mode 1 -> 2 in network elements"
        ~expected:"sequencing + buffer naming at DTN 1 (§ 5.4)"
        ~measured:
          (Printf.sprintf "%d frames rewritten, %d sequenced"
             physical.Mmt_pilot.Pilot.rewriter.Mmt_innet.Mode_rewriter.rewritten
             physical.Mmt_pilot.Pilot.rewriter.Mmt_innet.Mode_rewriter.sequenced)
        (physical.Mmt_pilot.Pilot.rewriter.Mmt_innet.Mode_rewriter.sequenced = 1500);
      Mmt_telemetry.Report.check ~metric:"loss recovered via NAK to DTN 1"
        ~expected:"recoverable-loss mode restores every WAN loss"
        ~measured:
          (Printf.sprintf
             "physical: %d gaps, %d recovered, 0 from source; fabric: %d gaps, %d \
              recovered"
             physical.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected
             physical.Mmt_pilot.Pilot.receiver.Mmt.Receiver.recovered
             fabric.Mmt_pilot.Pilot.receiver.Mmt.Receiver.gaps_detected
             fabric.Mmt_pilot.Pilot.receiver.Mmt.Receiver.recovered)
        (all_recovered physical && all_recovered fabric
        && physical.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.escalated = 0);
      Mmt_telemetry.Report.check ~metric:"age tracked hop-by-hop"
        ~expected:"every WAN frame's age field touched at the switch"
        ~measured:
          (Printf.sprintf "%d touches, %d aged at destination"
             physical.Mmt_pilot.Pilot.age.Mmt_innet.Age_tracker.touched
             physical.Mmt_pilot.Pilot.receiver.Mmt.Receiver.aged)
        (physical.Mmt_pilot.Pilot.age.Mmt_innet.Age_tracker.touched >= 1500);
      (let sliced = sliced_run () in
       Mmt_telemetry.Report.check ~metric:"partitioned instrument (Req 8/9)"
         ~expected:"4 slices share the top-level header; events reassemble"
         ~measured:
           (Printf.sprintf
              "%d fragments over 4 slices -> %d complete events (%d timed out)"
              sliced.Mmt_pilot.Pilot.emitted
              sliced.Mmt_pilot.Pilot.events.Mmt_daq.Event_builder.complete
              sliced.Mmt_pilot.Pilot.events.Mmt_daq.Event_builder.timed_out)
         (sliced.Mmt_pilot.Pilot.events.Mmt_daq.Event_builder.complete = 400
         && sliced.Mmt_pilot.Pilot.events.Mmt_daq.Event_builder.timed_out = 0));
      Mmt_telemetry.Report.check ~metric:"physical variant saturates 100 GbE"
        ~expected:"pilot v2 'saturates 100 GbE links' (§ 5.4)"
        ~measured:
          (Printf.sprintf "goodput %s on physical vs %s on FABRIC (same offered load)"
             (Units.Rate.to_string physical_peak)
             (Units.Rate.to_string fabric_peak))
        (Units.Rate.to_gbps physical_peak > 70.
        && Units.Rate.to_gbps fabric_peak < 30.);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-F4";
      title = "Fig. 4 / § 5.4: three-mode pilot, both hardware variants";
      note = Some "DAQ rate scale 1e-4 for the mode study; 7.2e-4 for saturation";
      rows;
    }
  in
  ( Table.render table ^ "\n" ^ age_histogram ^ "\n"
    ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
