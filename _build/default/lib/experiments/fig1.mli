(** E-F1 — Fig. 1: the end-to-end dataflow for large instruments.

    Drives the full staged path — DAQ network (1), WAN transmission
    (2), analysis facility (3) and direct fan-out to downstream
    researchers (4) — in one simulation and reports per-stage delivery
    and latency, including the 1 -> 4 shortcut ("sometimes, data must go
    straight from 1 to 4 for rapid coordination"). *)

val run : unit -> string * bool
