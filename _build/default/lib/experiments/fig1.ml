open Mmt_util

let run () =
  let config =
    {
      Mmt_pilot.Pilot.default_config with
      Mmt_pilot.Pilot.fragment_count = 1000;
      researchers = 3;
      wan_loss = 0.002;
      wan_corrupt = 0.0005;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 2048);
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  let results = Mmt_pilot.Pilot.results pilot in
  let receiver = Mmt_pilot.Pilot.receiver pilot in
  let analysis_latency = Stats.Summary.median (Mmt.Receiver.latency_summary receiver) in
  let researcher_latencies =
    List.map
      (fun r -> Stats.Summary.median (Mmt.Receiver.latency_summary r))
      (Mmt_pilot.Pilot.researcher_receivers pilot)
  in
  let stage_table =
    Table.create ~title:"Fig. 1 staged dataflow (one simulated run)"
      ~columns:
        [
          ("stage", Table.Left);
          ("role", Table.Left);
          ("packets", Table.Right);
          ("median latency", Table.Right);
        ]
      ()
  in
  Table.add_row stage_table
    [ "1 DAQ"; "sensor -> DTN1, mode 0"; string_of_int results.Mmt_pilot.Pilot.emitted; "-" ];
  Table.add_row stage_table
    [
      "2 WAN";
      "DTN1 -> switch -> DTN2, mode 1";
      string_of_int results.Mmt_pilot.Pilot.wan_a.Mmt_sim.Link.delivered;
      "-";
    ];
  Table.add_row stage_table
    [
      "3 analysis";
      "DTN2 receiver, mode 2 check";
      string_of_int results.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered;
      Printf.sprintf "%.3f ms" (analysis_latency *. 1e3);
    ];
  List.iteri
    (fun i (stats : Mmt.Receiver.stats) ->
      Table.add_row stage_table
        [
          Printf.sprintf "4 researcher %d" i;
          "duplicated at the switch (1 -> 4 shortcut)";
          string_of_int stats.Mmt.Receiver.delivered;
          Printf.sprintf "%.3f ms" (List.nth researcher_latencies i *. 1e3);
        ])
    results.Mmt_pilot.Pilot.researcher_stats;
  let researchers_beat_analysis =
    List.for_all (fun l -> l < analysis_latency +. 0.002) researcher_latencies
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"end-to-end delivery across all stages"
        ~expected:"instrument data reaches analysis complete"
        ~measured:
          (Printf.sprintf "%d/%d at the analysis facility"
             results.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered
             results.Mmt_pilot.Pilot.emitted)
        (results.Mmt_pilot.Pilot.receiver.Mmt.Receiver.delivered
        = results.Mmt_pilot.Pilot.emitted);
      Mmt_telemetry.Report.check ~metric:"researchers reached directly"
        ~expected:"the 1 -> 4 shortcut is at network latency, not via storage"
        ~measured:
          (Printf.sprintf "researcher medians %s ms; analysis %.3f ms"
             (String.concat ", "
                (List.map (fun l -> Printf.sprintf "%.3f" (l *. 1e3)) researcher_latencies))
             (analysis_latency *. 1e3))
        researchers_beat_analysis;
    ]
  in
  let report =
    { Mmt_telemetry.Report.id = "E-F1"; title = "Fig. 1: staged dataflow"; note = None; rows }
  in
  ( Table.render stage_table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
