(** E-F4 — Fig. 4 / § 5.4: the pilot study.

    Runs the three-mode pilot on both hardware variants (FABRIC
    virtual, physical 100 GbE) with ICEBERG-like LArTPC data, checking:
    mode changes happen entirely in network elements, loss on the WAN
    is recovered by NAK to DTN 1 (not the source), age is tracked
    hop-by-hop with the timeliness verdict at the destination, and the
    physical variant saturates its links where the virtual one is
    capped. *)

val run : unit -> string * bool
