open Mmt_util

let horizon = Units.Time.seconds 0.5

(* Pick each experiment's scale so ~400 fragments fit in the horizon:
   quantization error stays below 1% for every catalog rate. *)
let scale_for experiment =
  let fragment_bits =
    8
    * (Mmt_daq.Fragment.header_size + Mmt_daq.Fragment.subheader_size
      + Units.Size.to_bytes experiment.Mmt_daq.Experiment.message_size)
  in
  400. *. float_of_int fragment_bits
  /. (Units.Time.to_float_s horizon
     *. Units.Rate.to_bps experiment.Mmt_daq.Experiment.daq_rate)

let offered_for experiment =
  let engine = Mmt_sim.Engine.create () in
  let rng = Rng.create ~seed:101L in
  let scale = scale_for experiment in
  let config =
    {
      Mmt_daq.Workload.experiment;
      scale;
      profile = Mmt_daq.Workload.Steady;
      payload = Mmt_daq.Workload.Synthetic experiment.Mmt_daq.Experiment.message_size;
      run = 1;
      slice = 0;
    }
  in
  let workload =
    Mmt_daq.Workload.start ~engine ~rng config ~emit:(fun _ -> ()) ~until:horizon
  in
  Mmt_sim.Engine.run engine;
  ( Mmt_daq.Workload.offered_rate workload ~over:horizon,
    (Mmt_daq.Workload.stats workload).Mmt_daq.Workload.fragments_emitted )

let run () =
  let rows =
    List.map
      (fun experiment ->
        let scale = scale_for experiment in
        let offered, fragments = offered_for experiment in
        let target = Mmt_daq.Experiment.scaled_rate experiment ~scale in
        let ratio = Units.Rate.to_bps offered /. Units.Rate.to_bps target in
        let ok = Float.abs (ratio -. 1.) < 0.03 in
        Mmt_telemetry.Report.check
          ~metric:experiment.Mmt_daq.Experiment.name
          ~expected:
            (Printf.sprintf "%s (Table 1)"
               (Units.Rate.to_string experiment.Mmt_daq.Experiment.daq_rate))
          ~measured:
            (Printf.sprintf "%s offered at scale %g (%d fragments, ratio %.3f)"
               (Units.Rate.to_string offered) scale fragments ratio)
          ok)
      Mmt_daq.Experiment.all
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-T1";
      title = "Table 1: DAQ rates drive the workload generators";
      note =
        Some
          "rates scaled per experiment to ~400 fragments per half second of \
           simulation; fragment sizes and shapes preserved";
      rows;
    }
  in
  (Mmt_telemetry.Report.render report, Mmt_telemetry.Report.all_ok report)
