(** E-X1 / E-X2 — § 6: the paper's open challenges, implemented.

    These go beyond the paper's evaluation: they turn § 6's future-work
    sketches into running systems and measure them. *)

val discovery_failover : unit -> string * bool
(** E-X1 (§ 6 challenge 1): soft-state resource discovery with
    planner-driven mode reconfiguration.  A retransmission buffer
    fails mid-stream; its advertisements stop, the map expires it, the
    planner re-points the mode at the surviving buffer, and recovery
    continues with zero data loss. *)

val payload_alerts : unit -> string * bool
(** E-X2 (§ 6 challenge 2): multi-domain alert generation from raw DAQ
    data on a payload-capable device.  Also verifies the discipline: a
    P4 switch refuses to host the payload-processing element. *)
