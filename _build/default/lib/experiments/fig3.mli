(** E-F3 — Fig. 3: the multi-modal goal scenario.

    Per-segment mode matrix of the proposed transport, plus the
    behaviours Fig. 3 calls out: (3) nearer retransmission buffers cut
    recovery latency, (4) back-pressure from a congested element slows
    the sender and drains the queue, (5) in-network duplication gets
    fresh data to researchers at network latency. *)

val run : unit -> string * bool
