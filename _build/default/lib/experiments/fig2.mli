(** E-F2 — Fig. 2 and § 4.1: transporting DAQ data today.

    Reproduces the baseline picture: the per-segment feature matrix of
    today's UDP/TCP approach, plus the quantitative claims —
    single-stream TCP throughput is window-tuning-bound (untuned ≪
    autotuned ≪ DTN-tuned, the latter in the tens of Gbps), multiple
    tuned streams fill the link, loss head-of-line blocks messages, and
    UDP loss in the DAQ segment is simply gone. *)

val run : unit -> string * bool
