(** E-T1 — Table 1: DAQ rates of the catalogued experiments.

    For every instrument in the catalog, drives the workload generator
    at a recorded scale and verifies the offered load matches the
    scaled Table 1 rate (shape check: within 3 %). *)

val run : unit -> string * bool
(** Rendered report and whether every shape check passed. *)
