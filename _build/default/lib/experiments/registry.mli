(** Registry of every table/figure reproduction. *)

type entry = {
  id : string;  (** DESIGN.md experiment id, e.g. "E-F3" *)
  title : string;
  run : unit -> string * bool;
      (** rendered output and whether every shape check passed *)
}

val all : entry list
val find : string -> entry option
(** Case-insensitive lookup by id (with or without the "E-" prefix). *)

val run_all : unit -> bool
(** Run every experiment, printing each report; [true] when every
    shape check in every experiment passed. *)
