open Mmt_util
open Mmt_frame

let discovery_failover () =
  let baseline = Mmt_pilot.Failover_run.run (Mmt_pilot.Failover_run.params ()) in
  let failed =
    Mmt_pilot.Failover_run.run
      (Mmt_pilot.Failover_run.params ~fail_buffer_a_at:(Units.Time.ms 5.) ())
  in
  let table =
    Table.create ~title:"E-X1: buffer failure mid-stream (12000 fragments, 0.5% loss)"
      ~columns:
        [
          ("scenario", Table.Left);
          ("delivered", Table.Right);
          ("recovered", Table.Right);
          ("lost", Table.Right);
          ("served by A", Table.Right);
          ("served by B", Table.Right);
          ("mode changes", Table.Right);
          ("final buffer", Table.Right);
        ]
      ()
  in
  let add name (o : Mmt_pilot.Failover_run.outcome) =
    Table.add_row table
      [
        name;
        string_of_int o.Mmt_pilot.Failover_run.delivered;
        string_of_int o.Mmt_pilot.Failover_run.recovered;
        string_of_int o.Mmt_pilot.Failover_run.lost;
        string_of_int o.Mmt_pilot.Failover_run.naks_served_by_a;
        string_of_int o.Mmt_pilot.Failover_run.naks_served_by_b;
        string_of_int o.Mmt_pilot.Failover_run.mode_changes;
        o.Mmt_pilot.Failover_run.final_buffer;
      ]
  in
  add "both buffers alive" baseline;
  add "buffer A fails at 5 ms" failed;
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"nearest buffer preferred"
        ~expected:"planner picks the lower-RTT buffer (§ 6 challenge 1)"
        ~measured:
          (Printf.sprintf "baseline: all %d recoveries from A, final mode uses %s"
             baseline.Mmt_pilot.Failover_run.naks_served_by_a
             baseline.Mmt_pilot.Failover_run.final_buffer)
        (baseline.Mmt_pilot.Failover_run.final_buffer = "A"
        && baseline.Mmt_pilot.Failover_run.naks_served_by_b = 0
        && baseline.Mmt_pilot.Failover_run.lost = 0);
      Mmt_telemetry.Report.check ~metric:"failover without data loss"
        ~expected:"soft-state expiry + replan keeps the stream recoverable"
        ~measured:
          (Printf.sprintf
             "%d delivered, %d lost; %d recoveries served by B after %d mode change(s)"
             failed.Mmt_pilot.Failover_run.delivered
             failed.Mmt_pilot.Failover_run.lost
             failed.Mmt_pilot.Failover_run.naks_served_by_b
             failed.Mmt_pilot.Failover_run.mode_changes)
        (failed.Mmt_pilot.Failover_run.lost = 0
        && failed.Mmt_pilot.Failover_run.final_buffer = "B"
        && failed.Mmt_pilot.Failover_run.naks_served_by_b > 0
        && failed.Mmt_pilot.Failover_run.mode_changes = 1);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-X1";
      title = "resource discovery + failover (§ 6 challenge 1)";
      note = None;
      rows;
    }
  in
  ( Table.render table ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )

(* E-X2: in-network alert generation from raw DAQ payloads. ------------- *)

let dpu_ip = Addr.Ip.of_octets 10 6 0 2
let sink_ip = Addr.Ip.of_octets 10 6 0 3
let rubin_ip = Addr.Ip.of_octets 10 6 0 9
let experiment = Mmt.Experiment_id.make ~experiment:2 ~slice:0

let payload_alerts () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let rng = Rng.create ~seed:77L in
  let detector = Mmt_sim.Topology.add_node topo ~name:"detector" in
  let dpu = Mmt_sim.Topology.add_node topo ~name:"dpu" in
  let sink = Mmt_sim.Topology.add_node topo ~name:"analysis" in
  let rubin = Mmt_sim.Topology.add_node topo ~name:"vera-rubin" in
  let rate = Units.Rate.gbps 100. in
  let det_to_dpu =
    Mmt_sim.Topology.connect topo ~src:detector ~dst:dpu ~rate
      ~propagation:(Units.Time.us 20.) ()
  in
  let dpu_to_sink =
    Mmt_sim.Topology.connect topo ~src:dpu ~dst:sink ~rate
      ~propagation:(Units.Time.ms 6.) ()
  in
  let dpu_to_rubin =
    Mmt_sim.Topology.connect topo ~src:dpu ~dst:rubin ~rate
      ~propagation:(Units.Time.ms 20.) ()
  in
  let router = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send dpu_to_sink) () in
  Mmt_pilot.Router.add router rubin_ip (Mmt_sim.Link.send dpu_to_rubin);
  let env_dpu = Mmt_pilot.Router.env router ~engine ~fresh_id ~local_ip:dpu_ip in
  let generator =
    Mmt_innet.Alert_generator.create ~env:env_dpu
      {
        Mmt_innet.Alert_generator.sum_adc_threshold = 30_000;
        subscribers = [ rubin_ip ];
        min_gap = Units.Time.us 200.;
      }
  in
  (* The discipline: a Tofino cannot host this element... *)
  let p4_refused =
    match
      Mmt_innet.Switch.attach ~engine ~node:(Mmt_sim.Topology.add_node topo ~name:"p4")
        ~profile:Mmt_innet.Switch.tofino2
        ~elements:[ Mmt_innet.Alert_generator.element generator ]
        ~route:(fun _ -> None)
        ()
    with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  (* ...but the Alveo-class DPU can. *)
  let _dpu_switch =
    Mmt_innet.Switch.attach ~engine ~node:dpu ~profile:Mmt_innet.Switch.alveo_smartnic
      ~allow_payload:true
      ~elements:[ Mmt_innet.Alert_generator.element generator ]
      ~route:(fun _ -> Some (Mmt_sim.Link.send dpu_to_sink))
      ()
  in
  let sink_count = ref 0 in
  Mmt_sim.Node.set_handler sink (fun _ -> incr sink_count);
  let alerts = ref [] in
  Mmt_sim.Node.set_handler rubin (fun packet ->
      let frame = Mmt_sim.Packet.frame packet in
      match Mmt.Encap.strip frame with
      | Error _ -> ()
      | Ok (_encap, mmt) -> (
          match Mmt.Header.decode_bytes mmt with
          | Error _ -> ()
          | Ok header -> (
              let payload =
                Bytes.sub mmt (Mmt.Header.size header)
                  (Bytes.length mmt - Mmt.Header.size header)
              in
              match Mmt_daq.Fragment.decode payload with
              | Ok
                  ({ Mmt_daq.Fragment.detector = Mmt_daq.Fragment.Telescope_alert _; _ }
                   as fragment) ->
                  alerts := (Mmt_sim.Engine.now engine, fragment) :: !alerts
              | Ok _ | Error _ -> ())));
  (* Detector: trigger-primitive fragments; a supernova burst begins at
     2 ms (higher activity => bigger summed charge). *)
  let lartpc =
    { Mmt_daq.Lartpc.iceberg with Mmt_daq.Lartpc.channels = 32; samples_per_channel = 128 }
  in
  let sender_env =
    Mmt_pilot.Router.env
      (Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send det_to_dpu) ())
      ~engine ~fresh_id ~local_ip:(Addr.Ip.of_octets 10 6 0 1)
  in
  let sender =
    Mmt.Sender.create ~env:sender_env
      {
        Mmt.Sender.experiment;
        destination = sink_ip;
        encap = Mmt.Encap.Raw;
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let fragment_count = 400 in
  let burst_start = 200 in
  for i = 0 to fragment_count - 1 do
    ignore
      (Mmt_sim.Engine.schedule engine
         ~at:(Units.Time.scale (Units.Time.us 10.) (float_of_int i))
         (fun () ->
           let activity =
             if i >= burst_start then Mmt_daq.Lartpc.Supernova_burst
             else Mmt_daq.Lartpc.Quiet
           in
           let window = Mmt_daq.Lartpc.generate_window lartpc rng ~activity in
           let hits =
             Array.to_list window
             |> List.mapi (fun channel w ->
                    Mmt_daq.Lartpc.trigger_primitives lartpc ~threshold:15 ~channel w)
             |> List.concat
           in
           let fragment =
             {
               Mmt_daq.Fragment.run = 9;
               trigger = i;
               timestamp = Mmt_sim.Engine.now engine;
               experiment;
               detector =
                 Mmt_daq.Fragment.Wib_ethernet
                   {
                     crate = 1;
                     slot = 0;
                     fiber = 1;
                     first_channel = 0;
                     channel_count = lartpc.Mmt_daq.Lartpc.channels;
                   };
               payload = Mmt_daq.Lartpc.serialize_hits hits;
             }
           in
           Mmt.Sender.send sender (Mmt_daq.Fragment.encode fragment)))
  done;
  Mmt_sim.Engine.run engine;
  let stats = Mmt_innet.Alert_generator.stats generator in
  let alert_triggers =
    List.filter_map
      (fun (_at, f) ->
        match f.Mmt_daq.Fragment.detector with
        | Mmt_daq.Fragment.Telescope_alert _ -> Some f.Mmt_daq.Fragment.trigger
        | _ -> None)
      !alerts
  in
  let all_from_burst = List.for_all (fun t -> t >= burst_start) alert_triggers in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"P4 switch refuses payload processing"
        ~expected:"header-only discipline on switches (§ 5.3 / [25])"
        ~measured:(if p4_refused then "Switch.attach rejected the element" else "accepted!")
        p4_refused;
      Mmt_telemetry.Report.check ~metric:"DPU generates multi-domain alerts"
        ~expected:"alerts from raw DAQ data along the path (§ 6 challenge 2)"
        ~measured:
          (Printf.sprintf
             "%d fragments inspected, %d threshold crossings, %d alerts delivered \
              to Vera Rubin"
             stats.Mmt_innet.Alert_generator.inspected
             stats.Mmt_innet.Alert_generator.triggers_seen
             (List.length !alerts))
        (stats.Mmt_innet.Alert_generator.inspected = fragment_count
        && List.length !alerts > 0);
      Mmt_telemetry.Report.check ~metric:"alerts fire only on burst data"
        ~expected:"quiet fragments stay below the charge threshold"
        ~measured:
          (Printf.sprintf "alert triggers all >= %d (burst onset): %b" burst_start
             all_from_burst)
        all_from_burst;
      Mmt_telemetry.Report.check ~metric:"data path unaffected"
        ~expected:"every fragment still reaches the analysis facility"
        ~measured:(Printf.sprintf "%d/%d at the sink" !sink_count fragment_count)
        (!sink_count = fragment_count);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-X2";
      title = "in-network alert generation (§ 6 challenge 2)";
      note = None;
      rows;
    }
  in
  (Mmt_telemetry.Report.render report, Mmt_telemetry.Report.all_ok report)
