lib/experiments/ablations.ml: Float List Mmt Mmt_daq Mmt_pilot Mmt_tcp Mmt_telemetry Mmt_util Option Printf Table Units
