lib/experiments/challenge6.ml: Addr Array Bytes List Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_pilot Mmt_sim Mmt_telemetry Mmt_util Printf Rng Table Units
