lib/experiments/table1.ml: Float List Mmt_daq Mmt_sim Mmt_telemetry Mmt_util Printf Rng Units
