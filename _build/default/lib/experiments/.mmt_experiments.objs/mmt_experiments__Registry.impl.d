lib/experiments/registry.ml: Ablations Challenge6 Fig1 Fig2 Fig3 Fig4 List Printf String Table1
