lib/experiments/ablations.mli:
