lib/experiments/fig4.ml: Array Mmt Mmt_daq Mmt_innet Mmt_pilot Mmt_telemetry Mmt_util Printf Stats Table Units
