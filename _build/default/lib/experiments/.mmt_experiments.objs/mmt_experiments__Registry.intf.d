lib/experiments/registry.mli:
