lib/experiments/fig3.ml: List Mmt Mmt_daq Mmt_innet Mmt_pilot Mmt_sim Mmt_telemetry Mmt_util Printf Stats String Table Units
