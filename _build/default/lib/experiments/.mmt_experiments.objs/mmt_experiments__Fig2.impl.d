lib/experiments/fig2.ml: List Mmt_pilot Mmt_sim Mmt_tcp Mmt_telemetry Mmt_util Printf Table Units
