lib/experiments/challenge6.mli:
