open Mmt_util

let mode_matrix () =
  let table =
    Table.create ~title:"Fig. 3 mode matrix: multi-modal transport per segment"
      ~columns:
        [
          ("segment", Table.Left);
          ("mode", Table.Left);
          ("features", Table.Left);
          ("set by", Table.Left);
        ]
      ()
  in
  List.iter (Table.add_row table)
    [
      [ "sensor -> DTN 1"; "0 (identification)"; "experiment + slice only"; "sensor" ];
      [
        "DTN 1 -> WAN";
        "1 (recoverable, age-sensitive)";
        "sequenced, reliable(buffer=DTN1), age-tracked, timely";
        "DTN 1 smartNIC rewriter";
      ];
      [
        "WAN switch";
        "1 (maintained)";
        "age touch, duplication, back-pressure relay";
        "Tofino2 elements";
      ];
      [ "DTN 2"; "2 (timeliness check)"; "final age + deadline verdict"; "receiver" ];
    ];
  Table.render table

let recovery_comparison () =
  let run_at position =
    Mmt_pilot.Runners.Placement_run.run
      (Mmt_pilot.Runners.Placement_run.params ~buffer_position:position
         ~fragment_count:4000 ~loss:0.005 ())
  in
  (run_at 0., run_at 0.9)

let duplication_latency () =
  let config =
    {
      Mmt_pilot.Pilot.default_config with
      Mmt_pilot.Pilot.fragment_count = 500;
      wan_loss = 0.;
      wan_corrupt = 0.;
      researchers = 2;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 1024);
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  let receiver_latency =
    Stats.Summary.median (Mmt.Receiver.latency_summary (Mmt_pilot.Pilot.receiver pilot))
  in
  let researcher_latency =
    match Mmt_pilot.Pilot.researcher_receivers pilot with
    | r :: _ -> Stats.Summary.median (Mmt.Receiver.latency_summary r)
    | [] -> nan
  in
  let results = Mmt_pilot.Pilot.results pilot in
  (receiver_latency, researcher_latency, results)

let backpressure_demo ~backpressure =
  let config =
    {
      Mmt_pilot.Pilot.default_config with
      Mmt_pilot.Pilot.fragment_count = 4000;
      (* Offered ~24 Gbps against a 10 Gbps bottleneck hop. *)
      scale = 2e-4;
      wan_bottleneck = 0.1;
      wan_loss = 0.;
      wan_corrupt = 0.;
      backpressure;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 7200);
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;
  Mmt_pilot.Pilot.results pilot

let run () =
  let near_source, near_sink = recovery_comparison () in
  let dtn2_latency, researcher_latency, dup_results = duplication_latency () in
  let without_bp = backpressure_demo ~backpressure:false in
  let with_bp = backpressure_demo ~backpressure:true in
  let recovered_p50 (o : Mmt_pilot.Runners.Placement_run.outcome) = o.Mmt_pilot.Runners.Placement_run.latency_max in
  let bp_drops (r : Mmt_pilot.Pilot.results) =
    r.Mmt_pilot.Pilot.wan_b.Mmt_sim.Link.queue_drops
  in
  let rows =
    [
      Mmt_telemetry.Report.check ~metric:"recovery from a nearer buffer"
        ~expected:"max latency shrinks as the buffer approaches the sink (§ 5.1)"
        ~measured:
          (Printf.sprintf "buffer@source max %.2f ms vs buffer@90%% max %.2f ms"
             (recovered_p50 near_source *. 1e3)
             (recovered_p50 near_sink *. 1e3))
        (recovered_p50 near_sink < recovered_p50 near_source);
      Mmt_telemetry.Report.check ~metric:"reliability maintained in both placements"
        ~expected:"all fragments delivered"
        ~measured:
          (Printf.sprintf "%d and %d of 4000"
             near_source.Mmt_pilot.Runners.Placement_run.delivered
             near_sink.Mmt_pilot.Runners.Placement_run.delivered)
        (near_source.Mmt_pilot.Runners.Placement_run.delivered = 4000
        && near_sink.Mmt_pilot.Runners.Placement_run.delivered = 4000);
      Mmt_telemetry.Report.check ~metric:"in-network duplication (Fig. 3 point 5)"
        ~expected:"researchers receive the full stream directly"
        ~measured:
          (Printf.sprintf "researchers got %s; median latency %.3f ms vs DTN2 %.3f ms"
             (String.concat ", "
                (List.map
                   (fun (s : Mmt.Receiver.stats) -> string_of_int s.Mmt.Receiver.delivered)
                   dup_results.Mmt_pilot.Pilot.researcher_stats))
             (researcher_latency *. 1e3) (dtn2_latency *. 1e3))
        (List.for_all
           (fun (s : Mmt.Receiver.stats) -> s.Mmt.Receiver.delivered = 500)
           dup_results.Mmt_pilot.Pilot.researcher_stats);
      Mmt_telemetry.Report.check ~metric:"back-pressure (Fig. 3 point 4)"
        ~expected:"signal to the sender drains the congested queue"
        ~measured:
          (Printf.sprintf
             "bottleneck queue drops: %d without BP, %d with BP (%d signals)"
             (bp_drops without_bp) (bp_drops with_bp)
             (match with_bp.Mmt_pilot.Pilot.backpressure_stats with
             | Some s -> s.Mmt_innet.Backpressure_monitor.signals_sent
             | None -> 0))
        (bp_drops with_bp < bp_drops without_bp
        &&
        match with_bp.Mmt_pilot.Pilot.backpressure_stats with
        | Some s -> s.Mmt_innet.Backpressure_monitor.signals_sent > 0
        | None -> false);
      Mmt_telemetry.Report.check ~metric:"sender reacted to back-pressure"
        ~expected:"pace adopted from the advisory"
        ~measured:
          (Printf.sprintf "%d back-pressure messages received by the sensor"
             with_bp.Mmt_pilot.Pilot.sender.Mmt.Sender.backpressure_received)
        (with_bp.Mmt_pilot.Pilot.sender.Mmt.Sender.backpressure_received > 0);
    ]
  in
  let report =
    {
      Mmt_telemetry.Report.id = "E-F3";
      title = "Fig. 3: multi-modal transport goal scenario";
      note = None;
      rows;
    }
  in
  ( mode_matrix () ^ "\n" ^ Mmt_telemetry.Report.render report,
    Mmt_telemetry.Report.all_ok report )
