open Mmt_util

type t = {
  boundaries : int64 Queue.t; (* cumulative end offset of each message *)
  mutable marked_total : int64;
  mutable delivered : int64;
  mutable messages_marked : int;
  mutable messages_completed : int;
  mutable completions : Units.Time.t list; (* reversed *)
}

let create () =
  {
    boundaries = Queue.create ();
    marked_total = 0L;
    delivered = 0L;
    messages_marked = 0;
    messages_completed = 0;
    completions = [];
  }

let mark_message t ~size =
  if size <= 0 then invalid_arg "Framing.mark_message: non-positive size";
  t.marked_total <- Int64.add t.marked_total (Int64.of_int size);
  Queue.push t.marked_total t.boundaries;
  t.messages_marked <- t.messages_marked + 1

let on_delivered t ~now n =
  t.delivered <- Int64.add t.delivered (Int64.of_int n);
  let completed = ref 0 in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.boundaries with
    | Some boundary when Int64.compare boundary t.delivered <= 0 ->
        ignore (Queue.pop t.boundaries);
        t.messages_completed <- t.messages_completed + 1;
        t.completions <- now :: t.completions;
        incr completed
    | _ -> continue := false
  done;
  !completed

let messages_marked t = t.messages_marked
let messages_completed t = t.messages_completed
let completion_times t = Array.of_list (List.rev t.completions)
