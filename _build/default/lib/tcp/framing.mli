(** Message delineation over the baseline bytestream.

    DAQ peers using TCP must delineate messages inside the ordered
    bytestream, and a lost segment head-of-line blocks every later
    message until retransmission completes (§ 4.1 point 1).  This
    module measures exactly that: the sender marks message boundaries
    as it writes; the receiver side reports a message complete only
    when the in-order delivered byte count passes its boundary.
    Message latency under loss is the HoL-blocking observable that the
    multi-modal transport's datagram delivery avoids. *)

open Mmt_util

type t

val create : unit -> t

val mark_message : t -> size:int -> unit
(** Sender side: the next [size] written bytes form one message. *)

val on_delivered : t -> now:Units.Time.t -> int -> int
(** Receiver side: [n] more in-order bytes arrived; returns how many
    messages completed at this instant. *)

val messages_marked : t -> int
val messages_completed : t -> int

val completion_times : t -> Units.Time.t array
(** Completion instant of each finished message, in message order. *)
