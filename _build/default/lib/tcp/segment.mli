(** Baseline TCP segment codec.

    A compact TCP-like header for the baseline transport — not
    bit-compatible with RFC 793 (64-bit sequence space avoids wrap
    handling; no options), but carrying exactly the machinery the
    baseline models: cumulative ACKs, flags, and a receive window.
    The first byte is 0x54 ('T'), distinguishing baseline frames from
    multi-modal transport (0x01), IPv4 (0x45) and Ethernet frames. *)

type flags = { syn : bool; ack : bool; fin : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int64;  (** first payload byte's offset in the stream *)
  ack : int64;  (** next expected byte (valid when [flags.ack]) *)
  window : int;  (** receive window, bytes *)
  flags : flags;
  payload : bytes;
}

val header_size : int
(** 28 bytes. *)

val data : src_port:int -> dst_port:int -> seq:int64 -> ack:int64 -> window:int -> bytes -> t
val pure_ack : src_port:int -> dst_port:int -> ack:int64 -> window:int -> t
val encode : t -> bytes
val decode : bytes -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
