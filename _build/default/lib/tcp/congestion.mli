(** Congestion-control algorithms for the baseline TCP.

    Reno models classic loss-based control; Cubic models the default of
    today's tuned DTN stacks [22, 43, 73]; Bbr models the
    model-based algorithm ESnet has evaluated for Data Transfer Nodes
    (Tierney et al., "Exploring the BBRv2 Congestion Control Algorithm
    for use on Data Transfer Nodes" [73]) — it estimates the
    bottleneck bandwidth and path RTT instead of reacting to loss, so
    corruption loss on a capacity-planned WAN does not collapse its
    window.  All three operate on a window in bytes.

    The BBR here is a deliberately compact model (startup / drain /
    probe-bandwidth gain cycling over a max-bandwidth, min-RTT
    estimate), enough to reproduce the published *shape*: near-Cubic
    throughput on clean paths and near-immunity to random loss. *)

open Mmt_util

type algorithm = Reno | Cubic | Bbr

type t

val create :
  algorithm ->
  mss:int ->
  initial_window:int ->
  max_window:int ->
  t
(** Windows in bytes; [initial_window] doubles as the post-timeout
    restart window for the loss-based algorithms. *)

val window : t -> int
(** Current congestion window, bytes. *)

val ssthresh : t -> int

val on_ack :
  ?rtt_sample:float -> t -> acked:int -> now:Units.Time.t -> unit
(** [acked] new bytes were cumulatively acknowledged; [rtt_sample]
    (seconds), when available from a clean measurement, feeds BBR's
    min-RTT and bandwidth estimators (ignored by Reno/Cubic). *)

val on_fast_retransmit : t -> now:Units.Time.t -> unit
(** Triple-duplicate-ACK loss: multiplicative decrease for the
    loss-based algorithms; BBR does not reduce its window. *)

val on_timeout : t -> now:Units.Time.t -> unit
(** RTO loss: loss-based algorithms collapse to the initial window;
    BBR re-enters startup from its model estimate. *)

val in_slow_start : t -> bool
val describe : t -> string
