module Cursor = Mmt_wire.Cursor

type flags = { syn : bool; ack : bool; fin : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int64;
  ack : int64;
  window : int;
  flags : flags;
  payload : bytes;
}

let magic = 0x54
let header_size = 28

let data ~src_port ~dst_port ~seq ~ack ~window payload =
  {
    src_port;
    dst_port;
    seq;
    ack;
    window;
    flags = { syn = false; ack = true; fin = false };
    payload;
  }

let pure_ack ~src_port ~dst_port ~ack ~window =
  {
    src_port;
    dst_port;
    seq = 0L;
    ack;
    window;
    flags = { syn = false; ack = true; fin = false };
    payload = Bytes.create 0;
  }

let flags_byte f =
  (if f.syn then 1 else 0) lor (if f.ack then 2 else 0) lor (if f.fin then 4 else 0)

let encode t =
  let w = Cursor.Writer.create (header_size + Bytes.length t.payload) in
  Cursor.Writer.u8 w magic;
  Cursor.Writer.u8 w (flags_byte t.flags);
  Cursor.Writer.u16 w t.src_port;
  Cursor.Writer.u16 w t.dst_port;
  Cursor.Writer.u64 w t.seq;
  Cursor.Writer.u64 w t.ack;
  Cursor.Writer.u32_int w t.window;
  Cursor.Writer.u16 w (Bytes.length t.payload);
  Cursor.Writer.bytes w t.payload;
  Cursor.Writer.contents w

let decode buf =
  match
    let r = Cursor.Reader.of_bytes buf in
    let seen = Cursor.Reader.u8 r in
    if seen <> magic then Error "not a baseline TCP segment"
    else begin
      let fb = Cursor.Reader.u8 r in
      let src_port = Cursor.Reader.u16 r in
      let dst_port = Cursor.Reader.u16 r in
      let seq = Cursor.Reader.u64 r in
      let ack = Cursor.Reader.u64 r in
      let window = Cursor.Reader.u32_int r in
      let length = Cursor.Reader.u16 r in
      if Cursor.Reader.remaining r < length then Error "segment payload truncated"
      else
        let payload = Cursor.Reader.take r length in
        Ok
          {
            src_port;
            dst_port;
            seq;
            ack;
            window;
            flags =
              { syn = fb land 1 <> 0; ack = fb land 2 <> 0; fin = fb land 4 <> 0 };
            payload;
          }
    end
  with
  | result -> result
  | exception Cursor.Out_of_bounds _ -> Error "truncated segment"

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port && a.seq = b.seq
  && a.ack = b.ack && a.window = b.window && a.flags = b.flags
  && Bytes.equal a.payload b.payload

let pp fmt t =
  Format.fprintf fmt "tcp{%d->%d seq=%Ld ack=%Ld win=%d%s%s%s %dB}" t.src_port
    t.dst_port t.seq t.ack t.window
    (if t.flags.syn then " SYN" else "")
    (if t.flags.fin then " FIN" else "")
    (if t.flags.ack then " ACK" else "")
    (Bytes.length t.payload)
