open Mmt_util

type algorithm = Reno | Cubic | Bbr

type cubic_state = {
  mutable w_max : float;  (** window before the last reduction, bytes *)
  mutable epoch_start : Units.Time.t option;
  mutable k : float;  (** seconds to return to w_max *)
}

type bbr_mode = Bbr_startup | Bbr_drain | Bbr_probe_bw

type bbr_state = {
  mutable btlbw : float;  (** bottleneck bandwidth estimate, bytes/s *)
  mutable btlbw_stamp : Units.Time.t;  (** when the estimate last rose *)
  mutable rtprop : float;  (** min RTT estimate, seconds *)
  mutable rtprop_stamp : Units.Time.t;
  mutable bbr_mode : bbr_mode;
  mutable full_bw : float;  (** plateau detector *)
  mutable full_bw_count : int;
  mutable cycle_index : int;
  mutable cycle_stamp : Units.Time.t;
  mutable last_ack_at : Units.Time.t;
}

type t = {
  algorithm : algorithm;
  mss : int;
  initial_window : int;
  max_window : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  cubic : cubic_state;
  bbr : bbr_state;
}

(* Standard CUBIC constants. *)
let cubic_c = 0.4
let cubic_beta = 0.7

(* BBR probe-bandwidth gain cycle. *)
let bbr_gains = [| 1.25; 0.75; 1.; 1.; 1.; 1.; 1.; 1. |]
let bbr_cwnd_gain = 2.0
let bbr_startup_gain = 2.89

let create algorithm ~mss ~initial_window ~max_window =
  {
    algorithm;
    mss;
    initial_window;
    max_window;
    cwnd = initial_window;
    ssthresh = max_window;
    cubic = { w_max = 0.; epoch_start = None; k = 0. };
    bbr =
      {
        btlbw = 0.;
        btlbw_stamp = Units.Time.zero;
        rtprop = infinity;
        rtprop_stamp = Units.Time.zero;
        bbr_mode = Bbr_startup;
        full_bw = 0.;
        full_bw_count = 0;
        cycle_index = 0;
        cycle_stamp = Units.Time.zero;
        last_ack_at = Units.Time.zero;
      };
  }

let window t = t.cwnd
let ssthresh t = t.ssthresh

let in_slow_start t =
  match t.algorithm with
  | Reno | Cubic -> t.cwnd < t.ssthresh
  | Bbr -> t.bbr.bbr_mode = Bbr_startup

let clamp t value = max t.mss (min t.max_window value)

let reno_on_ack t ~acked =
  if t.cwnd < t.ssthresh then t.cwnd <- clamp t (t.cwnd + acked)
  else begin
    (* Additive increase: one MSS per window's worth of ACKs. *)
    let increment = max 1 (t.mss * t.mss / max t.mss t.cwnd) in
    t.cwnd <- clamp t (t.cwnd + increment)
  end

let cubic_target t ~now =
  match t.cubic.epoch_start with
  | None -> float_of_int t.cwnd
  | Some epoch ->
      let elapsed = Units.Time.to_float_s (Units.Time.diff now epoch) in
      let offset = elapsed -. t.cubic.k in
      t.cubic.w_max +. (cubic_c *. offset *. offset *. offset *. float_of_int t.mss)

let cubic_on_ack t ~acked ~now =
  if t.cwnd < t.ssthresh then t.cwnd <- clamp t (t.cwnd + acked)
  else begin
    if t.cubic.epoch_start = None then begin
      t.cubic.epoch_start <- Some now;
      if t.cubic.w_max < float_of_int t.cwnd then begin
        t.cubic.w_max <- float_of_int t.cwnd;
        t.cubic.k <- 0.
      end
      else
        t.cubic.k <-
          Float.cbrt
            ((t.cubic.w_max -. float_of_int t.cwnd)
            /. (cubic_c *. float_of_int t.mss))
    end;
    let target = cubic_target t ~now in
    if target > float_of_int t.cwnd then begin
      (* Approach the cubic curve over roughly one RTT of ACKs. *)
      let step =
        (target -. float_of_int t.cwnd) /. float_of_int (max t.mss t.cwnd)
        *. float_of_int t.mss
      in
      t.cwnd <- clamp t (t.cwnd + max 1 (int_of_float step))
    end
    else begin
      (* TCP-friendly floor: still grow slowly. *)
      let increment = max 1 (t.mss * t.mss / (100 * max t.mss t.cwnd)) in
      t.cwnd <- clamp t (t.cwnd + increment)
    end
  end

(* BBR ----------------------------------------------------------------- *)

let bbr_bdp t =
  let b = t.bbr in
  if b.btlbw <= 0. || b.rtprop = infinity then float_of_int t.initial_window
  else b.btlbw *. b.rtprop

let bbr_update_model t ~acked ~now ~rtt_sample =
  let b = t.bbr in
  (* Delivery-rate sample: bytes acked over the inter-ACK gap. *)
  let gap = Units.Time.to_float_s (Units.Time.diff now b.last_ack_at) in
  if gap > 0. then begin
    let rate = float_of_int acked /. gap in
    (* Stale estimates (no raise for ~10 estimated RTTs) decay so the
       filter can track a shrinking bottleneck. *)
    let stale_after =
      if b.rtprop = infinity then 1. else Float.max 0.1 (10. *. b.rtprop)
    in
    if Units.Time.to_float_s (Units.Time.diff now b.btlbw_stamp) > stale_after
    then begin
      b.btlbw <- b.btlbw *. 0.98;
      b.btlbw_stamp <- now
    end;
    if rate > b.btlbw then begin
      b.btlbw <- rate;
      b.btlbw_stamp <- now
    end
  end;
  b.last_ack_at <- now;
  match rtt_sample with
  | Some sample
    when sample > 0.
         && (sample < b.rtprop
            || Units.Time.to_float_s (Units.Time.diff now b.rtprop_stamp) > 10.) ->
      b.rtprop <- sample;
      b.rtprop_stamp <- now
  | Some _ | None -> ()

let bbr_on_ack t ~acked ~now ~rtt_sample =
  let b = t.bbr in
  bbr_update_model t ~acked ~now ~rtt_sample;
  (match b.bbr_mode with
  | Bbr_startup ->
      (* Exponential growth until the bandwidth estimate plateaus for
         three rounds. *)
      t.cwnd <- clamp t (t.cwnd + acked);
      if b.btlbw > b.full_bw *. 1.25 then begin
        b.full_bw <- b.btlbw;
        b.full_bw_count <- 0
      end
      else begin
        b.full_bw_count <- b.full_bw_count + 1;
        if b.full_bw_count >= 3 then begin
          b.bbr_mode <- Bbr_drain;
          b.cycle_stamp <- now
        end
      end
  | Bbr_drain ->
      (* One estimated RTT at bdp to empty the startup queue. *)
      t.cwnd <- clamp t (int_of_float (bbr_bdp t));
      if
        b.rtprop <> infinity
        && Units.Time.to_float_s (Units.Time.diff now b.cycle_stamp) >= b.rtprop
      then begin
        b.bbr_mode <- Bbr_probe_bw;
        b.cycle_index <- 0;
        b.cycle_stamp <- now
      end
  | Bbr_probe_bw ->
      if
        b.rtprop <> infinity
        && Units.Time.to_float_s (Units.Time.diff now b.cycle_stamp) >= b.rtprop
      then begin
        b.cycle_index <- (b.cycle_index + 1) mod Array.length bbr_gains;
        b.cycle_stamp <- now
      end;
      let gain = bbr_gains.(b.cycle_index) in
      let target = bbr_cwnd_gain *. gain *. bbr_bdp t in
      t.cwnd <- clamp t (int_of_float target));
  if b.bbr_mode = Bbr_startup then
    t.cwnd <- clamp t (max t.cwnd (int_of_float (bbr_startup_gain *. bbr_bdp t)))

let on_ack ?rtt_sample t ~acked ~now =
  match t.algorithm with
  | Reno -> reno_on_ack t ~acked
  | Cubic -> cubic_on_ack t ~acked ~now
  | Bbr -> bbr_on_ack t ~acked ~now ~rtt_sample

let on_fast_retransmit t ~now:_ =
  match t.algorithm with
  | Reno ->
      t.ssthresh <- max (2 * t.mss) (t.cwnd / 2);
      t.cwnd <- clamp t t.ssthresh
  | Cubic ->
      t.cubic.w_max <- float_of_int t.cwnd;
      t.cubic.epoch_start <- None;
      t.ssthresh <- max (2 * t.mss) (int_of_float (float_of_int t.cwnd *. cubic_beta));
      t.cwnd <- clamp t t.ssthresh
  | Bbr ->
      (* Loss is not a model input: the window tracks the estimate. *)
      ()

let on_timeout t ~now:_ =
  match t.algorithm with
  | Reno ->
      t.ssthresh <- max (2 * t.mss) (t.cwnd / 2);
      t.cwnd <- clamp t t.initial_window
  | Cubic ->
      t.cubic.w_max <- float_of_int t.cwnd;
      t.cubic.epoch_start <- None;
      t.ssthresh <- max (2 * t.mss) (t.cwnd / 2);
      t.cwnd <- clamp t t.initial_window
  | Bbr ->
      (* Conservative restart from the model rather than from scratch. *)
      t.cwnd <- clamp t (max t.initial_window (int_of_float (bbr_bdp t)))

let describe t =
  Printf.sprintf "%s(cwnd=%d, ssthresh=%d)"
    (match t.algorithm with
    | Reno -> "reno"
    | Cubic -> "cubic"
    | Bbr ->
        Printf.sprintf "bbr/%s"
          (match t.bbr.bbr_mode with
          | Bbr_startup -> "startup"
          | Bbr_drain -> "drain"
          | Bbr_probe_bw -> "probe-bw"))
    t.cwnd t.ssthresh
