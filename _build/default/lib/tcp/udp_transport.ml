open Mmt_util
open Mmt_frame
module Cursor = Mmt_wire.Cursor

type sender_stats = { datagrams_sent : int; bytes_sent : int }

type sender = {
  engine : Mmt_sim.Engine.t;
  fresh_id : unit -> int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
  src_port : int;
  dst_port : int;
  tx : Mmt_sim.Packet.t -> unit;
  padding : int;
  mutable datagrams_sent : int;
  mutable bytes_sent : int;
}

let create_sender ~engine ~fresh_id ~src ~dst ~src_port ~dst_port ~tx
    ?(padding = 0) () =
  {
    engine;
    fresh_id;
    src;
    dst;
    src_port;
    dst_port;
    tx;
    padding;
    datagrams_sent = 0;
    bytes_sent = 0;
  }

let send (t : sender) payload =
  let udp_len = Udp.header_size + Bytes.length payload in
  let w = Cursor.Writer.create (Ipv4.header_size + udp_len) in
  Ipv4.write w
    {
      Ipv4.dscp = 0;
      ttl = 64;
      protocol = Ipv4.protocol_udp;
      src = t.src;
      dst = t.dst;
      payload_length = udp_len;
    };
  Udp.write w
    {
      Udp.src_port = t.src_port;
      dst_port = t.dst_port;
      payload_length = Bytes.length payload;
    };
  Cursor.Writer.bytes w payload;
  let packet =
    Mmt_sim.Packet.create ~padding:t.padding ~id:(t.fresh_id ())
      ~born:(Mmt_sim.Engine.now t.engine) (Cursor.Writer.contents w)
  in
  t.datagrams_sent <- t.datagrams_sent + 1;
  t.bytes_sent <- t.bytes_sent + Units.Size.to_bytes (Mmt_sim.Packet.wire_size packet);
  t.tx packet

let sender_stats (t : sender) : sender_stats =
  { datagrams_sent = t.datagrams_sent; bytes_sent = t.bytes_sent }

type receiver_stats = {
  datagrams_received : int;
  bytes_received : int;
  corrupted : int;
  decode_failures : int;
}

type receiver = {
  deliver : src:Addr.Ip.t -> src_port:int -> bytes -> unit;
  mutable datagrams_received : int;
  mutable bytes_received : int;
  mutable corrupted : int;
  mutable decode_failures : int;
}

let create_receiver ~deliver () =
  {
    deliver;
    datagrams_received = 0;
    bytes_received = 0;
    corrupted = 0;
    decode_failures = 0;
  }

let on_packet (t : receiver) packet =
  if packet.Mmt_sim.Packet.corrupted then t.corrupted <- t.corrupted + 1
  else begin
    let frame = Mmt_sim.Packet.frame packet in
    match
      let r = Cursor.Reader.of_bytes frame in
      let ip = Ipv4.read r in
      let udp = Udp.read r in
      (ip, udp, Cursor.Reader.take r udp.Udp.payload_length)
    with
    | exception _ -> t.decode_failures <- t.decode_failures + 1
    | ip, udp, payload ->
        if ip.Ipv4.protocol <> Ipv4.protocol_udp then
          t.decode_failures <- t.decode_failures + 1
        else begin
          t.datagrams_received <- t.datagrams_received + 1;
          t.bytes_received <-
            t.bytes_received + Units.Size.to_bytes (Mmt_sim.Packet.wire_size packet);
          t.deliver ~src:ip.Ipv4.src ~src_port:udp.Udp.src_port payload
        end
  end

let receiver_stats (t : receiver) : receiver_stats =
  {
    datagrams_received = t.datagrams_received;
    bytes_received = t.bytes_received;
    corrupted = t.corrupted;
    decode_failures = t.decode_failures;
  }

let receiver_goodput t ~over =
  Units.Rate.of_size_per_time (Units.Size.bytes t.bytes_received) over
