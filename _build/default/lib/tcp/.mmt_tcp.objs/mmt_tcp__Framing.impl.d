lib/tcp/framing.ml: Array Int64 List Mmt_util Queue Units
