lib/tcp/segment.ml: Bytes Format Mmt_wire
