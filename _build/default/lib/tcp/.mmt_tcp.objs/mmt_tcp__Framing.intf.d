lib/tcp/framing.mli: Mmt_util Units
