lib/tcp/segment.mli: Format
