lib/tcp/congestion.mli: Mmt_util Units
