lib/tcp/connection.ml: Bytes Congestion Float Hashtbl Int64 Mmt_sim Mmt_util Option Queue Segment Units
