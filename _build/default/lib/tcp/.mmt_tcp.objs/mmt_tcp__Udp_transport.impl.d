lib/tcp/udp_transport.ml: Addr Bytes Ipv4 Mmt_frame Mmt_sim Mmt_util Mmt_wire Udp Units
