lib/tcp/connection.mli: Congestion Mmt_sim Mmt_util Units
