lib/tcp/udp_transport.mli: Addr Mmt_frame Mmt_sim Mmt_util Units
