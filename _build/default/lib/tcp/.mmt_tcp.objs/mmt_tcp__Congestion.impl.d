lib/tcp/congestion.ml: Array Float Mmt_util Printf Units
