(** Baseline TCP connection (one-directional data flow).

    A deliberately faithful model of the mechanisms that make TCP a
    poor fit for DAQ workloads (§ 4.1): an ordered bytestream with
    cumulative ACKs (head-of-line blocking), retransmission from the
    source across the whole path RTT, RTO estimation with exponential
    backoff, fast retransmit on triple duplicate ACKs, and Reno/Cubic
    congestion control.  "Tuning" (window sizing to the
    bandwidth-delay product, as DTN operators do [22, 43, 73]) is a
    configuration profile.

    Payload content is synthetic: segments carry their logical length
    (as wire padding) but no materialized bytes, so multi-gigabyte
    streams simulate in O(1) memory.  All measurements made on the
    baseline are timing and ordering measurements, which are
    unaffected. *)

open Mmt_util

type config = {
  mss : int;  (** payload bytes per segment *)
  initial_window : int;  (** bytes; also the post-RTO restart window *)
  max_window : int;  (** bytes; socket buffer = advertised window cap *)
  algorithm : Congestion.algorithm;
  min_rto : Units.Time.t;
  max_rto : Units.Time.t;
}

val default_config : config
(** Untuned endpoint: 64 KiB windows, Reno — the out-of-the-box
    behaviour the paper contrasts with tuned DTNs. *)

val tuned_config : bdp:Units.Size.t -> config
(** DTN-style tuning: Cubic, windows sized to the path
    bandwidth-delay product, 10 MSS initial window. *)

type stats = {
  bytes_written : int;
  bytes_acked : int;
  bytes_delivered : int;  (** in-order bytes handed to the receiver app *)
  segments_sent : int;
  retransmits : int;
  fast_retransmits : int;
  timeouts : int;
  duplicate_acks : int;
  out_of_order_segments : int;
  srtt : Units.Time.t option;
  cwnd : int;
  completed_at : Units.Time.t option;
      (** when every written byte was acknowledged (after [finish]) *)
}

type t

val create :
  engine:Mmt_sim.Engine.t ->
  fresh_id:(unit -> int) ->
  config:config ->
  ?port:int ->
  tx:(Mmt_sim.Packet.t -> unit) ->
  ?deliver:(int -> unit) ->
  unit ->
  t
(** [tx] transmits a packet toward the peer; [deliver n] reports [n]
    new in-order bytes to the receiving application.  [port] (default
    1) tags this connection's segments; arriving segments for other
    ports are ignored, so several connections can share one link for
    multi-stream experiments. *)

val on_packet : t -> Mmt_sim.Packet.t -> unit
(** Feed a packet from the peer; corrupted packets are dropped as a
    checksum failure would. *)

val write : t -> int -> unit
(** Append [n] synthetic bytes to the send stream. *)

val finish : t -> unit
(** No more writes; [stats.completed_at] is set once fully acked. *)

val stats : t -> stats
val config : t -> config
val rto : t -> Units.Time.t
