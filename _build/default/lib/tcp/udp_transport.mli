(** Baseline UDP datagram transport.

    "When a transport is used in a DAQ network, it is usually UDP (as
    done in DUNE)" (§ 4).  Fire-and-forget datagrams over an
    Ethernet+IPv4+UDP stack: no sequencing, no recovery, no
    timeliness — loss upstream of the first buffering stage is simply
    gone, which is the baseline the multi-modal mode-0/mode-1 split
    improves on. *)

open Mmt_util
open Mmt_frame

type sender

type sender_stats = { datagrams_sent : int; bytes_sent : int }

val create_sender :
  engine:Mmt_sim.Engine.t ->
  fresh_id:(unit -> int) ->
  src:Addr.Ip.t ->
  dst:Addr.Ip.t ->
  src_port:int ->
  dst_port:int ->
  tx:(Mmt_sim.Packet.t -> unit) ->
  ?padding:int ->
  unit ->
  sender

val send : sender -> bytes -> unit
val sender_stats : sender -> sender_stats

type receiver

type receiver_stats = {
  datagrams_received : int;
  bytes_received : int;
  corrupted : int;
  decode_failures : int;
}

val create_receiver :
  deliver:(src:Addr.Ip.t -> src_port:int -> bytes -> unit) -> unit -> receiver

val on_packet : receiver -> Mmt_sim.Packet.t -> unit
val receiver_stats : receiver -> receiver_stats
val receiver_goodput : receiver -> over:Units.Time.t -> Units.Rate.t
