lib/pilot/runners.ml: Array Bytes Mmt Mmt_frame Mmt_innet Mmt_sim Mmt_tcp Mmt_util Option Rng Router Stats Units
