lib/pilot/profile.mli: Mmt_innet Mmt_util Units
