lib/pilot/profile.ml: Mmt_innet Mmt_util Units
