lib/pilot/failover_run.mli: Mmt Mmt_util Units
