lib/pilot/address.mli: Addr Mmt_frame
