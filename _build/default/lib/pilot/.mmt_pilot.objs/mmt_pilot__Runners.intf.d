lib/pilot/runners.mli: Mmt Mmt_tcp Mmt_util Units
