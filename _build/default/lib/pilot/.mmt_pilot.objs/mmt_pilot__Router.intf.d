lib/pilot/router.mli: Addr Mmt_frame Mmt_runtime Mmt_sim
