lib/pilot/pilot.ml: Address Bytes Fun List Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_sim Mmt_util Option Printf Profile Rng Router Units
