lib/pilot/router.ml: Addr Hashtbl Mmt_frame Mmt_runtime Mmt_sim
