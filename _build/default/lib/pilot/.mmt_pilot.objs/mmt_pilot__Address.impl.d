lib/pilot/address.ml: Addr Mmt_frame
