lib/pilot/failover_run.ml: Addr Bytes Mmt Mmt_frame Mmt_innet Mmt_runtime Mmt_sim Mmt_util Option Rng Router Units
