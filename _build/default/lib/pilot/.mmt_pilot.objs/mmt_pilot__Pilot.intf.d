lib/pilot/pilot.mli: Mmt Mmt_daq Mmt_innet Mmt_sim Mmt_util Profile Units
