(** Well-known addresses of the pilot topology (Fig. 4). *)

open Mmt_frame

val sensor_ip : Addr.Ip.t
val dtn1_ip : Addr.Ip.t
val dtn2_ip : Addr.Ip.t
val researcher_ip : int -> Addr.Ip.t
(** [researcher_ip i] for downstream consumers 0, 1, ... *)

val sensor_mac : Addr.Mac.t
val dtn1_mac : Addr.Mac.t
