open Mmt_frame

let sensor_ip = Addr.Ip.of_octets 10 0 0 1
let dtn1_ip = Addr.Ip.of_octets 10 0 1 1
let dtn2_ip = Addr.Ip.of_octets 10 0 3 1
let researcher_ip i = Addr.Ip.of_octets 10 1 0 (1 + i)
let sensor_mac = Addr.Mac.of_string "02:00:00:00:00:01"
let dtn1_mac = Addr.Mac.of_string "02:00:00:00:01:01"
