(** Pilot hardware profiles (§ 5.4).

    "Two versions of the pilot were developed: the first uses
    lower-performance, virtual hardware on the FABRIC testbed, and the
    second uses physical hardware and saturates 100 GbE links." *)

open Mmt_util

type t = {
  name : string;
  daq_link_rate : Units.Rate.t;  (** sensor -> DTN 1 *)
  wan_link_rate : Units.Rate.t;  (** DTN 1 -> switch -> DTN 2 *)
  daq_propagation : Units.Time.t;
  switch : Mmt_innet.Switch.profile;  (** the mid-path device *)
  nic : Mmt_innet.Switch.profile;  (** DTN smartNIC (Alveo model) *)
  host_overhead : Units.Time.t;  (** per-packet host processing at DTNs *)
}

val fabric_virtual : t
(** FABRIC testbed VMs: 25 GbE virtual links, software switching. *)

val physical_100gbe : t
(** EdgeCore Tofino2 + Alveo U280/U55C, 100 GbE links. *)

val all : t list
