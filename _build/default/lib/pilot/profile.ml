open Mmt_util

type t = {
  name : string;
  daq_link_rate : Units.Rate.t;
  wan_link_rate : Units.Rate.t;
  daq_propagation : Units.Time.t;
  switch : Mmt_innet.Switch.profile;
  nic : Mmt_innet.Switch.profile;
  host_overhead : Units.Time.t;
}

let fabric_virtual =
  {
    name = "fabric-virtual";
    daq_link_rate = Units.Rate.gbps 25.;
    wan_link_rate = Units.Rate.gbps 25.;
    daq_propagation = Units.Time.us 50.;
    switch = Mmt_innet.Switch.software_switch;
    nic = Mmt_innet.Switch.software_switch;
    host_overhead = Units.Time.us 30.;
  }

let physical_100gbe =
  {
    name = "physical-100gbe";
    daq_link_rate = Units.Rate.gbps 100.;
    wan_link_rate = Units.Rate.gbps 100.;
    daq_propagation = Units.Time.us 5.;
    switch = Mmt_innet.Switch.tofino2;
    nic = Mmt_innet.Switch.alveo_smartnic;
    host_overhead = Units.Time.us 3.;
  }

let all = [ fabric_virtual; physical_100gbe ]
