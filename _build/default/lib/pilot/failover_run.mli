(** Dynamic buffer discovery and failover (§ 6, challenge 1, end to end).

    Topology: {v source -> ingress switch -> buffer A -> buffer B -> sink v}
    with loss on the final hop.  Both buffer points snoop passing
    sequenced frames into their retransmission buffers and advertise
    themselves to the ingress switch's control-plane participant;
    the ingress rewriter's reliability mode is (re)planned from the
    resource map, so it names the nearest live buffer.

    Mid-run, buffer A fails: it stops advertising, snooping and serving
    NAKs.  Its soft state expires from the map, the planner re-points
    the mode at buffer B, and recovery continues without operator
    action — the "simple 3-mode setup that pre-supposes knowledge of
    in-network resources" (§ 5.4) upgraded to discovered, failure-
    tolerant state. *)

open Mmt_util

type params = {
  fragment_count : int;
  fragment_size : Units.Size.t;
  loss : float;  (** on the buffer-B -> sink hop *)
  fail_buffer_a_at : Units.Time.t option;  (** [None]: no failure *)
  advert_period : Units.Time.t;
  seed : int64;
}

val params :
  ?fragment_count:int ->
  ?fragment_size:Units.Size.t ->
  ?loss:float ->
  ?fail_buffer_a_at:Units.Time.t ->
  ?advert_period:Units.Time.t ->
  ?seed:int64 ->
  unit ->
  params

type outcome = {
  delivered : int;
  recovered : int;
  lost : int;
  naks_served_by_a : int;
  naks_served_by_b : int;
  mode_changes : int;  (** rewriter reconfigurations by the planner *)
  final_buffer : string;  (** "A", "B" or "none" *)
  adverts_received : int;
  receiver : Mmt.Receiver.stats;
}

val run : params -> outcome
