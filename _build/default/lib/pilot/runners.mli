(** Reusable experiment runners behind the figure/table reproductions.

    Each function builds a topology, drives it to quiescence and
    returns a measurement record.  The bench harness and the examples
    format these into {!Mmt_telemetry.Report}s. *)

open Mmt_util

(** Point-to-point baseline TCP transfer over a WAN path (Fig. 2 /
    § 4.1 claims).  Messages are written at the link pace and message
    completion latency is tracked through {!Mmt_tcp.Framing} to expose
    head-of-line blocking. *)
module Tcp_run : sig
  type params = {
    rate : Units.Rate.t;
    rtt : Units.Time.t;
    loss : float;
    transfer : Units.Size.t;
    message_size : Units.Size.t;
    offered : Units.Rate.t;
        (** the application's message pace; default = link rate
            (back-to-back).  Set it below the steady-state TCP rate to
            isolate HoL blocking from slow-start backlog. *)
    config : Mmt_tcp.Connection.config;
    queue_capacity : Units.Size.t;
    seed : int64;
  }

  val params :
    ?rate:Units.Rate.t ->
    ?rtt:Units.Time.t ->
    ?loss:float ->
    ?transfer:Units.Size.t ->
    ?message_size:Units.Size.t ->
    ?offered:Units.Rate.t ->
    ?config:Mmt_tcp.Connection.config ->
    ?seed:int64 ->
    unit ->
    params
  (** Defaults: 100 GbE, 13 ms RTT, lossless, 64 MiB transfer, 1 MiB
      messages, tuned config, queue sized to 2x BDP. *)

  type outcome = {
    fct : Units.Time.t option;  (** flow completion (all bytes acked) *)
    throughput : Units.Rate.t;  (** transfer size / fct *)
    stats : Mmt_tcp.Connection.stats;
    message_latency_p50 : float;
        (** seconds; percentiles exclude the first 20% of messages
            (slow-start warmup) *)
    message_latency_p99 : float;
    message_latency_max : float;
    messages_completed : int;
  }

  val run : params -> outcome
end

(** UDP across the DAQ segment (Fig. 2 stage 1): loss is simply gone. *)
module Udp_run : sig
  type outcome = {
    sent : int;
    received : int;
    lost : int;
    goodput : Units.Rate.t;
  }

  val run :
    ?rate:Units.Rate.t ->
    ?loss:float ->
    ?datagrams:int ->
    ?size:Units.Size.t ->
    ?seed:int64 ->
    unit ->
    outcome
end

(** Multi-modal transfer with the retransmission buffer placed at a
    configurable fraction of the one-way WAN path (E-A1): recovery RTT
    shrinks as the buffer moves toward the destination, which is the
    paper's core flow-completion-time argument (§ 5.1). *)
module Placement_run : sig
  type params = {
    rate : Units.Rate.t;
    rtt : Units.Time.t;  (** end-to-end WAN RTT *)
    buffer_position : float;  (** 0 = at the source, 1 = at the sink *)
    loss : float;  (** applied downstream of the buffer *)
    bursty : bool;
        (** Gilbert-Elliott burst loss at the same average rate instead
            of independent Bernoulli loss *)
    buffer_capacity : Units.Size.t;
        (** shrink below the working set to exercise eviction and NAK
            escalation *)
    fragment_count : int;
    fragment_size : Units.Size.t;
    nak_delay : Units.Time.t;
    age_budget_us : int;
    seed : int64;
  }

  val params :
    ?rate:Units.Rate.t ->
    ?rtt:Units.Time.t ->
    ?buffer_position:float ->
    ?loss:float ->
    ?bursty:bool ->
    ?buffer_capacity:Units.Size.t ->
    ?fragment_count:int ->
    ?fragment_size:Units.Size.t ->
    ?nak_delay:Units.Time.t ->
    ?age_budget_us:int ->
    ?seed:int64 ->
    unit ->
    params

  type outcome = {
    delivered : int;
    recovered : int;
    lost : int;
    fct : Units.Time.t option;  (** all fragments delivered *)
    latency_p50 : float;  (** seconds, per-message transport latency *)
    latency_p99 : float;
    latency_max : float;
    recovery_rtt : Units.Time.t;  (** theoretical NAK round trip *)
    receiver : Mmt.Receiver.stats;
  }

  val run : params -> outcome
end

(** Deadline-aware queueing vs drop-tail under bulk congestion
    (E-A5): a bulk stream oversubscribes a bottleneck while a small
    deadline-bearing alert stream shares it — § 5.3's "deadlines as an
    input to active queue management". *)
module Priority_run : sig
  type params = {
    link_rate : Units.Rate.t;
    bulk_rate : Units.Rate.t;  (** offered bulk load (oversubscribes) *)
    bulk_count : int;
    alert_count : int;
    alert_deadline : Units.Time.t;
    deadline_aware : bool;
    seed : int64;
  }

  val params :
    ?link_rate:Units.Rate.t ->
    ?bulk_rate:Units.Rate.t ->
    ?bulk_count:int ->
    ?alert_count:int ->
    ?alert_deadline:Units.Time.t ->
    ?deadline_aware:bool ->
    ?seed:int64 ->
    unit ->
    params

  type outcome = {
    alerts_delivered : int;
    alerts_late : int;
    bulk_delivered : int;
    alert_latency_p99 : float;  (** seconds *)
  }

  val run : params -> outcome
end
