lib/runtime/env.mli: Addr Mmt_frame Mmt_sim Mmt_util Queue Units
