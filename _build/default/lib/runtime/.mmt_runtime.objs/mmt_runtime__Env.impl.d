lib/runtime/env.ml: Addr Mmt_frame Mmt_sim Queue
