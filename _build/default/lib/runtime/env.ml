open Mmt_frame

type t = {
  engine : Mmt_sim.Engine.t;
  local_ip : Addr.Ip.t;
  send : Addr.Ip.t -> Mmt_sim.Packet.t -> unit;
  fresh_id : unit -> int;
}

let now t = Mmt_sim.Engine.now t.engine
let after t delay fn = Mmt_sim.Engine.schedule_after t.engine ~delay fn

let packet t ?(padding = 0) frame =
  Mmt_sim.Packet.create ~padding ~id:(t.fresh_id ()) ~born:(now t) frame

let loopback ?(local_ip = Addr.Ip.of_octets 127 0 0 1) engine =
  let queue = Queue.create () in
  let counter = ref 0 in
  let fresh_id () =
    let id = !counter in
    incr counter;
    id
  in
  let send _dst pkt = Queue.push pkt queue in
  ({ engine; local_ip; send; fresh_id }, queue)
