(** Protocol runtime environment.

    Transport endpoints (both the multi-modal transport and the TCP/UDP
    baselines) are written against this capability record instead of a
    concrete topology: a clock and timers from the simulation engine,
    an IP-addressed send primitive, and fresh packet identities.  The
    pilot layer constructs one per host from a {!Mmt_sim.Topology}. *)

open Mmt_util
open Mmt_frame

type t = {
  engine : Mmt_sim.Engine.t;
  local_ip : Addr.Ip.t;
  send : Addr.Ip.t -> Mmt_sim.Packet.t -> unit;
      (** Route a packet toward a destination IP and transmit it on the
          corresponding link.  Unroutable destinations are counted and
          dropped by the implementation. *)
  fresh_id : unit -> int;  (** Fresh packet identity. *)
}

val now : t -> Units.Time.t
val after : t -> Units.Time.t -> (unit -> unit) -> Mmt_sim.Engine.handle

val packet : t -> ?padding:int -> bytes -> Mmt_sim.Packet.t
(** Wrap a frame into a packet born now with a fresh identity. *)

val loopback : ?local_ip:Addr.Ip.t -> Mmt_sim.Engine.t -> t * Mmt_sim.Packet.t Queue.t
(** Test helper: an environment whose [send] appends to the returned
    queue regardless of destination. *)
