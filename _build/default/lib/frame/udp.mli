(** UDP header.

    Used by the baseline DAQ-network transport (as DUNE does today,
    § 4 of the paper).  The checksum is left zero — legal for IPv4 UDP
    and matching high-rate DAQ practice where integrity is handled at
    the application layer. *)

type t = { src_port : int; dst_port : int; payload_length : int }

val header_size : int
(** 8 bytes. *)

val write : Mmt_wire.Cursor.Writer.t -> t -> unit
val read : Mmt_wire.Cursor.Reader.t -> t
(** @raise Mmt_wire.Cursor.Out_of_bounds on truncated input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
