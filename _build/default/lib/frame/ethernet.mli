(** Ethernet II framing.

    The multi-modal transport can run directly over layer 2 inside the
    DAQ network (Req 1); {!ethertype_mmt} is the experimental ethertype
    it uses there. *)

type t = {
  dst : Addr.Mac.t;
  src : Addr.Mac.t;
  ethertype : int; (* 16-bit *)
}

val header_size : int
(** 14 bytes (no VLAN tag, no FCS — the simulator models corruption
    separately). *)

val ethertype_ipv4 : int
val ethertype_mmt : int
(** 0x88B5: IEEE 802 local experimental ethertype 1, used for the
    multi-modal transport directly over Ethernet. *)

val write : Mmt_wire.Cursor.Writer.t -> t -> unit
val read : Mmt_wire.Cursor.Reader.t -> t
(** @raise Mmt_wire.Cursor.Out_of_bounds on truncated input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
