(** IPv4 header (no options, no fragmentation).

    DAQ networks configure MTUs to remove fragmentation (§ 2.1 of the
    paper), so the codec rejects fragmented datagrams rather than
    reassemble. *)

type t = {
  dscp : int; (* 6-bit differentiated services code point *)
  ttl : int;
  protocol : int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
  payload_length : int; (* bytes after this header *)
}

val header_size : int
(** 20 bytes. *)

val protocol_udp : int
val protocol_mmt : int
(** 0xFD: IANA "use for experimentation and testing" protocol number,
    carrying the multi-modal transport over IP (Req 1). *)

val write : Mmt_wire.Cursor.Writer.t -> t -> unit
(** Computes and embeds the header checksum. *)

val read : Mmt_wire.Cursor.Reader.t -> t
(** @raise Failure on bad version, bad checksum, options present or a
    fragmented datagram.
    @raise Mmt_wire.Cursor.Out_of_bounds on truncated input. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
