module Cursor = Mmt_wire.Cursor

type t = { dst : Addr.Mac.t; src : Addr.Mac.t; ethertype : int }

let header_size = 14
let ethertype_ipv4 = 0x0800
let ethertype_mmt = 0x88B5

let write w t =
  let mac48 m =
    let raw = Addr.Mac.to_int64 m in
    Cursor.Writer.u16 w (Int64.to_int (Int64.shift_right_logical raw 32));
    Cursor.Writer.u32 w (Int64.to_int32 raw)
  in
  mac48 t.dst;
  mac48 t.src;
  Cursor.Writer.u16 w t.ethertype

let read r =
  let mac48 () =
    let high = Int64.of_int (Cursor.Reader.u16 r) in
    let low = Int64.logand (Int64.of_int32 (Cursor.Reader.u32 r)) 0xFFFFFFFFL in
    Addr.Mac.of_int64 (Int64.logor (Int64.shift_left high 32) low)
  in
  let dst = mac48 () in
  let src = mac48 () in
  let ethertype = Cursor.Reader.u16 r in
  { dst; src; ethertype }

let equal a b =
  Addr.Mac.equal a.dst b.dst && Addr.Mac.equal a.src b.src
  && a.ethertype = b.ethertype

let pp fmt t =
  Format.fprintf fmt "eth{%a -> %a, type 0x%04x}" Addr.Mac.pp t.src Addr.Mac.pp
    t.dst t.ethertype
