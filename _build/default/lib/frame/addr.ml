module Mac = struct
  type t = int64

  let mask = 0xFFFFFFFFFFFFL
  let broadcast = mask
  let of_int64 x = Int64.logand x mask
  let to_int64 t = t

  let of_string s =
    match String.split_on_char ':' s with
    | [ a; b; c; d; e; f ] ->
        let octet part =
          match int_of_string_opt ("0x" ^ part) with
          | Some v when v >= 0 && v <= 0xFF -> Int64.of_int v
          | _ -> invalid_arg ("Addr.Mac.of_string: " ^ s)
        in
        List.fold_left
          (fun acc part -> Int64.logor (Int64.shift_left acc 8) (octet part))
          0L [ a; b; c; d; e; f ]
    | _ -> invalid_arg ("Addr.Mac.of_string: " ^ s)

  let to_string t =
    let octet i =
      Int64.to_int (Int64.logand (Int64.shift_right_logical t (8 * i)) 0xFFL)
    in
    Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (octet 5) (octet 4) (octet 3)
      (octet 2) (octet 1) (octet 0)

  let equal = Int64.equal
  let compare = Int64.compare
  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let is_broadcast t = Int64.equal t broadcast
end

module Ip = struct
  type t = int32

  let any = 0l
  let of_int32 x = x
  let to_int32 t = t

  let of_octets a b c d =
    let check v = if v < 0 || v > 255 then invalid_arg "Addr.Ip.of_octets" in
    check a; check b; check c; check d;
    Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)

  let of_string s =
    match String.split_on_char '.' s with
    | [ a; b; c; d ] -> (
        match
          (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
           int_of_string_opt d)
        with
        | Some a, Some b, Some c, Some d
          when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255
               && d >= 0 && d <= 255 ->
            of_octets a b c d
        | _ -> invalid_arg ("Addr.Ip.of_string: " ^ s))
    | _ -> invalid_arg ("Addr.Ip.of_string: " ^ s)

  let to_string t =
    let v = Int32.to_int t land 0xFFFFFFFF in
    Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xFF) ((v lsr 16) land 0xFF)
      ((v lsr 8) land 0xFF) (v land 0xFF)

  let equal = Int32.equal
  let compare = Int32.compare
  let pp fmt t = Format.pp_print_string fmt (to_string t)
  let is_any t = Int32.equal t 0l
end
