module Cursor = Mmt_wire.Cursor

type t = { src_port : int; dst_port : int; payload_length : int }

let header_size = 8

let write w t =
  Cursor.Writer.u16 w t.src_port;
  Cursor.Writer.u16 w t.dst_port;
  Cursor.Writer.u16 w (header_size + t.payload_length);
  Cursor.Writer.u16 w 0

let read r =
  let src_port = Cursor.Reader.u16 r in
  let dst_port = Cursor.Reader.u16 r in
  let length = Cursor.Reader.u16 r in
  let _checksum = Cursor.Reader.u16 r in
  { src_port; dst_port; payload_length = length - header_size }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && a.payload_length = b.payload_length

let pp fmt t =
  Format.fprintf fmt "udp{%d -> %d, payload %dB}" t.src_port t.dst_port
    t.payload_length
