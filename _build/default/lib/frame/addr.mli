(** Link-layer and network-layer addresses. *)

module Mac : sig
  type t
  (** A 48-bit Ethernet address. *)

  val broadcast : t
  val of_int64 : int64 -> t
  (** Low 48 bits are used. *)

  val to_int64 : t -> int64
  val of_string : string -> t
  (** Parse "aa:bb:cc:dd:ee:ff".  @raise Invalid_argument on bad
      syntax. *)

  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val is_broadcast : t -> bool
end

module Ip : sig
  type t
  (** An IPv4 address. *)

  val any : t
  (** 0.0.0.0 — used as "no address" in optional header fields. *)

  val of_int32 : int32 -> t
  val to_int32 : t -> int32
  val of_octets : int -> int -> int -> int -> t
  val of_string : string -> t
  (** Parse dotted quad.  @raise Invalid_argument on bad syntax. *)

  val to_string : t -> string
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val is_any : t -> bool
end
