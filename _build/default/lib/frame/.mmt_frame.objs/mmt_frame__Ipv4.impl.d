lib/frame/ipv4.ml: Addr Bytes Format Mmt_wire
