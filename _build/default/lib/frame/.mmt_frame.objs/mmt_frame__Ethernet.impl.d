lib/frame/ethernet.ml: Addr Format Int64 Mmt_wire
