lib/frame/ethernet.mli: Addr Format Mmt_wire
