lib/frame/addr.ml: Format Int32 Int64 List Printf String
