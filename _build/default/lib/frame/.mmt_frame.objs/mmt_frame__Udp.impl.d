lib/frame/udp.ml: Format Mmt_wire
