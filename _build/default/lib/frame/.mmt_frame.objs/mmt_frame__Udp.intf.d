lib/frame/udp.mli: Format Mmt_wire
