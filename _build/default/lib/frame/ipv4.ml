module Cursor = Mmt_wire.Cursor

type t = {
  dscp : int;
  ttl : int;
  protocol : int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
  payload_length : int;
}

let header_size = 20
let protocol_udp = 17
let protocol_mmt = 0xFD

let write w t =
  let scratch = Cursor.Writer.create header_size in
  Cursor.Writer.u8 scratch 0x45; (* version 4, IHL 5 *)
  Cursor.Writer.u8 scratch ((t.dscp land 0x3F) lsl 2);
  Cursor.Writer.u16 scratch (header_size + t.payload_length);
  Cursor.Writer.u16 scratch 0; (* identification *)
  Cursor.Writer.u16 scratch 0x4000; (* DF set, offset 0 *)
  Cursor.Writer.u8 scratch t.ttl;
  Cursor.Writer.u8 scratch t.protocol;
  Cursor.Writer.u16 scratch 0; (* checksum placeholder *)
  Cursor.Writer.u32 scratch (Addr.Ip.to_int32 t.src);
  Cursor.Writer.u32 scratch (Addr.Ip.to_int32 t.dst);
  let raw = Cursor.Writer.contents scratch in
  let csum = Cursor.checksum raw ~off:0 ~len:header_size in
  Bytes.set_uint16_be raw 10 csum;
  Cursor.Writer.bytes w raw

let read r =
  let raw = Cursor.Reader.take r header_size in
  if Cursor.checksum raw ~off:0 ~len:header_size <> 0 then
    failwith "Ipv4.read: bad checksum";
  let r = Cursor.Reader.of_bytes raw in
  let version_ihl = Cursor.Reader.u8 r in
  if version_ihl lsr 4 <> 4 then failwith "Ipv4.read: not IPv4";
  if version_ihl land 0xF <> 5 then failwith "Ipv4.read: options unsupported";
  let dscp = Cursor.Reader.u8 r lsr 2 in
  let total_length = Cursor.Reader.u16 r in
  let _identification = Cursor.Reader.u16 r in
  let flags_offset = Cursor.Reader.u16 r in
  if flags_offset land 0x3FFF <> 0 || flags_offset land 0x2000 <> 0 then
    failwith "Ipv4.read: fragmentation unsupported";
  let ttl = Cursor.Reader.u8 r in
  let protocol = Cursor.Reader.u8 r in
  let _checksum = Cursor.Reader.u16 r in
  let src = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
  let dst = Addr.Ip.of_int32 (Cursor.Reader.u32 r) in
  { dscp; ttl; protocol; src; dst; payload_length = total_length - header_size }

let equal a b =
  a.dscp = b.dscp && a.ttl = b.ttl && a.protocol = b.protocol
  && Addr.Ip.equal a.src b.src && Addr.Ip.equal a.dst b.dst
  && a.payload_length = b.payload_length

let pp fmt t =
  Format.fprintf fmt "ipv4{%a -> %a, proto %d, ttl %d, payload %dB}" Addr.Ip.pp
    t.src Addr.Ip.pp t.dst t.protocol t.ttl t.payload_length
