(** Aligned plain-text tables for experiment reports.

    Every table and figure reproduction in [bench/] and the telemetry
    reports print through this module so output is uniform and easy to
    diff against EXPERIMENTS.md. *)

type alignment = Left | Right

type t

val create : ?title:string -> columns:(string * alignment) list -> unit -> t
(** [create ~columns ()] starts a table with the given header cells.
    @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
(** Render with box-drawing-free ASCII, column-aligned. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)
