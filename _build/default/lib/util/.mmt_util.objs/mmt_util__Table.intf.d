lib/util/table.mli:
