lib/util/stats.ml: Array Buffer Float Hashtbl List Option Printf Stdlib String
