lib/util/rng.mli:
