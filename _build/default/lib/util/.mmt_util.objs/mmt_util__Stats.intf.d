lib/util/stats.mli:
