lib/util/units.ml: Float Format Int Int64 Stdlib
