(** Streaming and sampled statistics used by the telemetry layer.

    [Welford] keeps O(1) moments for unbounded streams; [Summary]
    stores the full sample for exact quantiles (experiment runs are
    small enough); [Histogram] buckets values for distribution shape
    reports. *)

module Welford : sig
  type t
  (** Numerically stable running mean/variance accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Sample (n-1) variance; 0. for fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val sum : t -> float
  val merge : t -> t -> t
  (** [merge a b] is the accumulator over both streams. *)
end

module Summary : sig
  type t
  (** Exact-quantile summary backed by a growable sample array. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [\[0, 1\]], by linear interpolation of
      the order statistics.  [nan] when empty.
      @raise Invalid_argument if [q] outside [\[0, 1\]]. *)

  val median : t -> float
  val min : t -> float
  val max : t -> float
  val to_array : t -> float array
  (** Sorted copy of the sample. *)
end

module Histogram : sig
  type t
  (** Fixed-width bucket histogram over [\[lo, hi)]; outliers are
      counted in saturating edge buckets. *)

  val create : lo:float -> hi:float -> buckets:int -> t
  (** @raise Invalid_argument if [hi <= lo] or [buckets < 1]. *)

  val add : t -> float -> unit
  val count : t -> int
  val bucket_count : t -> int
  val bucket_bounds : t -> int -> float * float
  (** Inclusive-exclusive bounds of bucket [i]. *)

  val bucket_value : t -> int -> int
  (** Occupancy of bucket [i]. *)

  val underflow : t -> int
  val overflow : t -> int
  val render : t -> width:int -> string
  (** ASCII bar rendering for reports. *)
end

module Counter : sig
  type t
  (** Named monotone counters, for loss/retransmit/etc. tallies. *)

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val get : t -> string -> int
  (** 0 for never-incremented names. *)

  val to_list : t -> (string * int) list
  (** Sorted by name. *)
end
