type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: mix the raw counter into an output word. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* Derive a well-separated seed by double-mixing the next raw word. *)
  let derived = mix (Int64.logxor (int64 t) 0xD1B54A32D192ED03L) in
  { state = derived }

let bits32 t = Int64.to_int32 (Int64.shift_right_logical (int64 t) 32)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let candidate = Int64.rem raw bound64 in
    (* Reject the final, partial copy of [0, bound) at the top of the
       63-bit range; the sum overflows to negative exactly there. *)
    if Int64.add (Int64.sub raw candidate) (Int64.sub bound64 1L) < 0L
    then loop ()
    else Int64.to_int candidate
  in
  loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  if lo = hi then lo else lo + int t ~bound:(hi - lo + 1)

let float t =
  (* 53 random bits into [0,1). *)
  let raw = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float raw *. 0x1.0p-53

let float_in_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0. then false else if p >= 1. then true else float t < p

let gaussian t ~mu ~sigma =
  let rec polar () =
    let u = float_in_range t ~lo:(-1.) ~hi:1. in
    let v = float_in_range t ~lo:(-1.) ~hi:1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then polar ()
    else u *. sqrt (-2. *. log s /. s)
  in
  mu +. (sigma *. polar ())

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t) /. rate

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  scale /. ((1. -. float t) ** (1. /. shape))

let poisson t ~mean =
  if mean < 0. then invalid_arg "Rng.poisson: mean must be non-negative";
  if mean = 0. then 0
  else if mean > 500. then
    (* Normal approximation keeps the loop bounded for huge means. *)
    let x = gaussian t ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec loop k product =
      let product = product *. float t in
      if product <= limit then k else loop (k + 1) product
    in
    loop 0 1.

let pick t values =
  if Array.length values = 0 then invalid_arg "Rng.pick: empty array";
  values.(int t ~bound:(Array.length values))

let shuffle t values =
  for i = Array.length values - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = values.(i) in
    values.(i) <- values.(j);
    values.(j) <- tmp
  done
