type alignment = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  alignments : alignment list;
  mutable rows : row list; (* reversed *)
}

let create ?title ~columns () =
  if columns = [] then invalid_arg "Table.create: no columns";
  {
    title;
    headers = List.map fst columns;
    alignments = List.map snd columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad alignment width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match alignment with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Separator -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buffer = Buffer.create 1024 in
  (match t.title with
  | Some title ->
      Buffer.add_string buffer ("== " ^ title ^ " ==\n")
  | None -> ());
  let render_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths t.alignments)
        cells
    in
    Buffer.add_string buffer ("| " ^ String.concat " | " padded ^ " |\n")
  in
  let rule () =
    let dashes = List.map (fun w -> String.make w '-') widths in
    Buffer.add_string buffer ("|-" ^ String.concat "-|-" dashes ^ "-|\n")
  in
  render_cells t.headers;
  rule ();
  List.iter
    (fun row -> match row with Cells cells -> render_cells cells | Separator -> rule ())
    rows;
  Buffer.contents buffer

let print t =
  print_string (render t);
  print_newline ()
