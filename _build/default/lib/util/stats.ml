module Welford = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable sum : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; sum = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.sum <- t.sum +. x

  let count t = t.count
  let mean t = t.mean

  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let sum t = t.sum

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int count)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
            /. float_of_int count)
      in
      {
        count;
        mean;
        m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        sum = a.sum +. b.sum;
      }
    end
end

module Summary = struct
  type t = {
    mutable values : float array;
    mutable length : int;
    mutable sorted : bool;
  }

  let create () = { values = Array.make 16 0.; length = 0; sorted = true }

  let add t x =
    if t.length = Array.length t.values then begin
      let bigger = Array.make (2 * t.length) 0. in
      Array.blit t.values 0 bigger 0 t.length;
      t.values <- bigger
    end;
    t.values.(t.length) <- x;
    t.length <- t.length + 1;
    t.sorted <- false

  let count t = t.length

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.values 0 t.length in
      Array.sort compare live;
      Array.blit live 0 t.values 0 t.length;
      t.sorted <- true
    end

  let mean t =
    if t.length = 0 then 0.
    else begin
      let total = ref 0. in
      for i = 0 to t.length - 1 do
        total := !total +. t.values.(i)
      done;
      !total /. float_of_int t.length
    end

  let quantile t q =
    if q < 0. || q > 1. then invalid_arg "Stats.Summary.quantile";
    if t.length = 0 then nan
    else begin
      ensure_sorted t;
      let position = q *. float_of_int (t.length - 1) in
      let below = int_of_float (Float.floor position) in
      let above = Stdlib.min (below + 1) (t.length - 1) in
      let fraction = position -. float_of_int below in
      t.values.(below) +. (fraction *. (t.values.(above) -. t.values.(below)))
    end

  let median t = quantile t 0.5

  let min t = if t.length = 0 then nan else (ensure_sorted t; t.values.(0))
  let max t = if t.length = 0 then nan else (ensure_sorted t; t.values.(t.length - 1))

  let to_array t =
    ensure_sorted t;
    Array.sub t.values 0 t.length
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    buckets : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable count : int;
  }

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Stats.Histogram.create: hi <= lo";
    if buckets < 1 then invalid_arg "Stats.Histogram.create: buckets < 1";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      buckets = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
      count = 0;
    }

  let add t x =
    t.count <- t.count + 1;
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. t.width) in
      let i = Stdlib.min i (Array.length t.buckets - 1) in
      t.buckets.(i) <- t.buckets.(i) + 1
    end

  let count t = t.count
  let bucket_count t = Array.length t.buckets

  let bucket_bounds t i =
    (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

  let bucket_value t i = t.buckets.(i)
  let underflow t = t.underflow
  let overflow t = t.overflow

  let render t ~width =
    let peak = Array.fold_left Stdlib.max 1 t.buckets in
    let buffer = Buffer.create 256 in
    Array.iteri
      (fun i occupancy ->
        let lo, hi = bucket_bounds t i in
        let bar_length = occupancy * width / peak in
        Buffer.add_string buffer
          (Printf.sprintf "[%10.3g, %10.3g) %6d %s\n" lo hi occupancy
             (String.make bar_length '#')))
      t.buckets;
    Buffer.contents buffer
end

module Counter = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let incr ?(by = 1) t name =
    let current = Option.value ~default:0 (Hashtbl.find_opt t name) in
    Hashtbl.replace t name (current + by)

  let get t name = Option.value ~default:0 (Hashtbl.find_opt t name)

  let to_list t =
    Hashtbl.fold (fun name value acc -> (name, value) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
