(** Deterministic pseudo-random number generation.

    All randomness in the simulator, workload generators and loss models
    flows through this module so that every experiment is reproducible
    from a seed.  The generator is splitmix64, which is fast, passes
    BigCrush, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator at the same state as [t]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    future outputs of [t].  [t] advances by one step. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits32 : t -> int32
(** Next 32 random bits. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_in_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate with mean [mu] and standard deviation [sigma]
    (Marsaglia polar method). *)

val exponential : t -> rate:float -> float
(** Exponential deviate with rate parameter [rate] (mean [1. /. rate]).
    @raise Invalid_argument if [rate <= 0.]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate: heavy-tailed sizes for background traffic.
    @raise Invalid_argument if [shape <= 0.] or [scale <= 0.]. *)

val poisson : t -> mean:float -> int
(** Poisson deviate (Knuth's method for small means, normal
    approximation above 500).  @raise Invalid_argument if [mean < 0.]. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
