(** Payload confidentiality (Req 5).

    The paper keeps encryption out of the transport: "we retain the
    current practice of encrypting the payload using existing
    third-party software or hardware" (§ 5.3) — e.g. Vera Rubin alerts
    must be encrypted so security-sensitive observations don't leak
    [54].  This module marks that seam with a stand-in stream cipher:
    a splitmix64 keystream XORed over the payload, keyed by a shared
    secret and a per-message nonce.  It is NOT cryptographically secure
    — swap in a real AEAD for production — but it exercises the
    architectural property that matters here: the transport header
    stays in the clear for in-network processing while the payload is
    opaque, and any on-path corruption of an encrypted payload is
    detected by the integrity tag. *)

type key
(** A 128-bit shared secret. *)

val key_of_string : string -> key
(** Derive a key from a passphrase (hashing, not KDF-grade). *)

val encrypt : key -> nonce:int64 -> bytes -> bytes
(** [encrypt key ~nonce payload] returns nonce-bound ciphertext with a
    64-bit integrity tag appended (8 bytes of overhead). *)

val decrypt : key -> nonce:int64 -> bytes -> (bytes, string) result
(** Fails on a wrong key, wrong nonce, truncation or bit corruption. *)

val overhead : int
(** Bytes added by {!encrypt}: 8. *)
