(** The 32-bit experiment identifier of the core header.

    Per § 5.2, "some of these bits can be used to describe which part
    of a partitioned instrument produced the data" (Req 8): the high
    24 bits name the experiment, the low 8 bits name the instrument
    slice (0 = unpartitioned / whole instrument). *)

type t

val make : experiment:int -> slice:int -> t
(** @raise Invalid_argument unless [0 <= experiment < 2^24] and
    [0 <= slice < 2^8]. *)

val experiment : t -> int
val slice : t -> int
val to_int32 : t -> int32
val of_int32 : int32 -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val with_slice : t -> int -> t
(** Same experiment, different slice. *)
