open Mmt_util
open Mmt_frame

type config = {
  experiment : Experiment_id.t;
  destination : Addr.Ip.t;
  encap : Encap.t;
  deadline_budget : (Units.Time.t * Addr.Ip.t) option;
  backpressure_to : Addr.Ip.t option;
  pace : Units.Rate.t option;
  padding : int;
}

type stats = {
  messages_sent : int;
  bytes_sent : int;
  backpressure_received : int;
  deadline_notices_received : int;
  current_pace : Units.Rate.t option;
  queued : int;
}

type t = {
  env : Mmt_runtime.Env.t;
  config : config;
  queue : bytes Queue.t;
  mutable pace : Units.Rate.t option;
  mutable drain_scheduled : bool;
  mutable next_departure : Units.Time.t;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable backpressure_received : int;
  mutable deadline_notices_received : int;
}

let create ~env config =
  {
    env;
    config;
    queue = Queue.create ();
    pace = config.pace;
    drain_scheduled = false;
    next_departure = Units.Time.zero;
    messages_sent = 0;
    bytes_sent = 0;
    backpressure_received = 0;
    deadline_notices_received = 0;
  }

let header_for t ~now =
  let header = Header.mode0 ~experiment:t.config.experiment in
  let header =
    match t.config.deadline_budget with
    | None -> header
    | Some (budget, notify) ->
        Header.with_timely header
          { Header.deadline = Units.Time.add now budget; notify }
  in
  match t.config.backpressure_to with
  | None -> header
  | Some control -> Header.with_backpressure_to header control

let build_frame t payload =
  let header = header_for t ~now:(Mmt_runtime.Env.now t.env) in
  let mmt = Header.encode header in
  let frame = Bytes.create (Bytes.length mmt + Bytes.length payload) in
  Bytes.blit mmt 0 frame 0 (Bytes.length mmt);
  Bytes.blit payload 0 frame (Bytes.length mmt) (Bytes.length payload);
  Encap.wrap t.config.encap frame

let transmit t payload =
  let frame = build_frame t payload in
  let packet = Mmt_runtime.Env.packet t.env ~padding:t.config.padding frame in
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <-
    t.bytes_sent + Units.Size.to_bytes (Mmt_sim.Packet.wire_size packet);
  t.env.Mmt_runtime.Env.send t.config.destination packet

let message_wire_size t payload =
  (* The pacer's view of one message on the wire. *)
  let header_size = Header.size (header_for t ~now:Units.Time.zero) in
  let encap_size =
    match t.config.encap with
    | Encap.Raw -> 0
    | Encap.Over_ethernet _ -> Ethernet.header_size
    | Encap.Over_ipv4 _ -> Ipv4.header_size
  in
  Units.Size.bytes
    (header_size + encap_size + Bytes.length payload + t.config.padding)

let rec drain t =
  t.drain_scheduled <- false;
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some payload -> (
      let now = Mmt_runtime.Env.now t.env in
      match t.pace with
      | None ->
          (* Pace was removed while queued: flush everything. *)
          Queue.iter (transmit t) t.queue;
          Queue.clear t.queue
      | Some pace ->
          if Units.Time.(t.next_departure <= now) then begin
            ignore (Queue.pop t.queue);
            transmit t payload;
            let gap = Units.Rate.transmission_time pace (message_wire_size t payload) in
            t.next_departure <- Units.Time.add now gap
          end;
          if not (Queue.is_empty t.queue) then schedule_drain t)

and schedule_drain t =
  if not t.drain_scheduled then begin
    t.drain_scheduled <- true;
    let now = Mmt_runtime.Env.now t.env in
    let delay = Units.Time.diff t.next_departure now in
    ignore (Mmt_runtime.Env.after t.env delay (fun () -> drain t))
  end

let send t payload =
  match t.pace with
  | None when Queue.is_empty t.queue -> transmit t payload
  | _ ->
      Queue.push payload t.queue;
      schedule_drain t

let send_many t payloads = List.iter (send t) payloads

let on_control t header payload =
  match header.Header.kind with
  | Feature.Kind.Backpressure -> (
      match Control.Backpressure.decode payload with
      | Error _ -> ()
      | Ok bp ->
          t.backpressure_received <- t.backpressure_received + 1;
          if bp.Control.Backpressure.severity = 0 then t.pace <- t.config.pace
          else
            t.pace <-
              Some
                (Units.Rate.mbps
                   (float_of_int bp.Control.Backpressure.advised_pace_mbps)))
  | Feature.Kind.Deadline_exceeded ->
      t.deadline_notices_received <- t.deadline_notices_received + 1
  | Feature.Kind.Data | Feature.Kind.Nak | Feature.Kind.Buffer_advert -> ()

let stats t =
  {
    messages_sent = t.messages_sent;
    bytes_sent = t.bytes_sent;
    backpressure_received = t.backpressure_received;
    deadline_notices_received = t.deadline_notices_received;
    current_pace = t.pace;
    queued = Queue.length t.queue;
  }

let config t = t.config
