(** Data source endpoint.

    Sends discrete, timestamped messages (Req 7) toward a destination,
    encapsulated per segment (Req 1).  A sensor's sender starts in mode
    0 — identification only, no buffering, no retransmission — exactly
    as the paper's Fig. 3 point (1); downstream features are activated
    by the network, not here.

    The sender optionally honours pacing, and reacts to in-band
    back-pressure messages by adjusting its pace ("relay a backpressure
    signal to the sender", § 5.1). *)

open Mmt_util
open Mmt_frame

type config = {
  experiment : Experiment_id.t;
  destination : Addr.Ip.t;
  encap : Encap.t;
  deadline_budget : (Units.Time.t * Addr.Ip.t) option;
      (** sender-applied Timely feature: per-message absolute deadline
          of send-time + budget, and the notification sink *)
  backpressure_to : Addr.Ip.t option;
      (** advertise this control address in the header so on-path
          elements know where congestion signals go *)
  pace : Units.Rate.t option;  (** initial pace; [None] = unpaced *)
  padding : int;
      (** extra wire bytes per message, to model jumbo payloads without
          materializing them *)
}

type stats = {
  messages_sent : int;
  bytes_sent : int;  (** wire bytes including padding *)
  backpressure_received : int;
  deadline_notices_received : int;
  current_pace : Units.Rate.t option;
  queued : int;  (** messages waiting behind the pacer *)
}

type t

val create : env:Mmt_runtime.Env.t -> config -> t

val send : t -> bytes -> unit
(** Enqueue one message.  Departs immediately when unpaced and the
    queue is empty; otherwise at the pace. *)

val send_many : t -> bytes list -> unit

val on_control : t -> Header.t -> bytes -> unit
(** Feed a control-kind transport message addressed to this sender
    (back-pressure, deadline-exceeded notices). *)

val stats : t -> stats
val config : t -> config
