type t = int (* 32-bit value: experiment in high 24, slice in low 8 *)

let make ~experiment ~slice =
  if experiment < 0 || experiment > 0xFFFFFF then
    invalid_arg "Experiment_id.make: experiment out of 24-bit range";
  if slice < 0 || slice > 0xFF then
    invalid_arg "Experiment_id.make: slice out of 8-bit range";
  (experiment lsl 8) lor slice

let experiment t = t lsr 8
let slice t = t land 0xFF
let to_int32 t = Int32.of_int t
let of_int32 raw = Int32.to_int raw land 0xFFFFFFFF
let equal = Int.equal
let compare = Int.compare
let with_slice t slice = make ~experiment:(experiment t) ~slice

let pp fmt t =
  if slice t = 0 then Format.fprintf fmt "exp:%06x" (experiment t)
  else Format.fprintf fmt "exp:%06x/slice:%d" (experiment t) (slice t)
