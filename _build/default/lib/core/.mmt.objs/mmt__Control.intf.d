lib/core/control.mli: Addr Format Mmt_frame Mmt_util Units
