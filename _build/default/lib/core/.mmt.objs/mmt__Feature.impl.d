lib/core/feature.ml: Format Int List Printf String
