lib/core/header.mli: Addr Experiment_id Feature Format Mmt_frame Mmt_util Mmt_wire Units
