lib/core/sender.ml: Addr Bytes Control Encap Ethernet Experiment_id Feature Header Ipv4 List Mmt_frame Mmt_runtime Mmt_sim Mmt_util Queue Units
