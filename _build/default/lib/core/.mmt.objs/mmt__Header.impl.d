lib/core/header.ml: Addr Bytes Char Experiment_id Feature Format Int32 Int64 List Mmt_frame Mmt_util Mmt_wire Option Printf Units
