lib/core/sender.mli: Addr Encap Experiment_id Header Mmt_frame Mmt_runtime Mmt_util Units
