lib/core/payload_crypto.ml: Bytes Char Int64 Mmt_util Rng String
