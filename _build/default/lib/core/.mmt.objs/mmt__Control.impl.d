lib/core/control.ml: Addr Format Int64 List Mmt_frame Mmt_util Mmt_wire Units
