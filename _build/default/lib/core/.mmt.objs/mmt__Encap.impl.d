lib/core/encap.ml: Addr Bytes Char Ethernet Ipv4 Mmt_frame Mmt_wire Printf
