lib/core/mode.ml: Addr Feature Format Mmt_frame Mmt_util Option Printf Result Units
