lib/core/buffer_host.mli: Addr Control Mmt_frame Mmt_runtime Mmt_sim Mmt_util Retx_buffer Units
