lib/core/retx_buffer.mli: Mmt_util Units
