lib/core/retx_buffer.ml: Bytes Hashtbl Mmt_util Queue Units
