lib/core/payload_crypto.mli:
