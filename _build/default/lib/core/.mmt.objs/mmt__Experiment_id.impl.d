lib/core/experiment_id.ml: Format Int Int32
