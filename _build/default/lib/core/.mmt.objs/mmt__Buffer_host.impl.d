lib/core/buffer_host.ml: Addr Bytes Control Encap Experiment_id Feature Header List Mmt_frame Mmt_runtime Mmt_sim Retx_buffer
