lib/core/feature.mli: Format
