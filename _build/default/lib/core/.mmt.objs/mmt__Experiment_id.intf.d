lib/core/experiment_id.mli: Format
