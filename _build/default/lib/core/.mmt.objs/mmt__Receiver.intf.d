lib/core/receiver.mli: Experiment_id Header Mmt_runtime Mmt_sim Mmt_util Stats Units
