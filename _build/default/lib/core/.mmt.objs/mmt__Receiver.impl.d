lib/core/receiver.ml: Addr Bytes Control Encap Experiment_id Feature Hashtbl Header Int64 List Mmt_frame Mmt_runtime Mmt_sim Mmt_util Option Stats Units
