lib/core/mode.mli: Addr Feature Format Mmt_frame Mmt_util Units
