lib/core/encap.mli: Addr Mmt_frame
