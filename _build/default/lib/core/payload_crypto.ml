open Mmt_util

type key = { k0 : int64; k1 : int64 }

let key_of_string passphrase =
  (* Two rounds of splitmix-style mixing over the bytes. *)
  let fold seed =
    let state = Rng.create ~seed in
    String.fold_left
      (fun acc c ->
        let mixed = Int64.add (Int64.mul acc 1099511628211L) (Int64.of_int (Char.code c)) in
        Int64.logxor mixed (Rng.int64 state))
      1469598103934665603L passphrase
  in
  { k0 = fold 0x5EEDL; k1 = fold 0xFACEL }

let overhead = 8

let keystream key ~nonce =
  Rng.create ~seed:Int64.(logxor (add key.k0 (mul nonce 0x9E3779B97F4A7C15L)) key.k1)

let apply_keystream rng buf =
  let n = Bytes.length buf in
  let i = ref 0 in
  while !i + 8 <= n do
    Bytes.set_int64_le buf !i (Int64.logxor (Bytes.get_int64_le buf !i) (Rng.int64 rng));
    i := !i + 8
  done;
  if !i < n then begin
    let word = ref (Rng.int64 rng) in
    while !i < n do
      Bytes.set buf !i
        (Char.chr (Char.code (Bytes.get buf !i) lxor (Int64.to_int !word land 0xFF)));
      word := Int64.shift_right_logical !word 8;
      incr i
    done
  end

(* A 64-bit keyed checksum over the plaintext (FNV-style), bound to the
   nonce.  Not a MAC; a corruption detector. *)
let tag key ~nonce plaintext =
  let h = ref (Int64.logxor key.k1 nonce) in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    plaintext;
  Int64.logxor !h key.k0

let encrypt key ~nonce payload =
  let out = Bytes.create (Bytes.length payload + overhead) in
  Bytes.blit payload 0 out 0 (Bytes.length payload);
  Bytes.set_int64_be out (Bytes.length payload) (tag key ~nonce payload);
  apply_keystream (keystream key ~nonce) out;
  out

let decrypt key ~nonce ciphertext =
  if Bytes.length ciphertext < overhead then Error "ciphertext too short"
  else begin
    let work = Bytes.copy ciphertext in
    apply_keystream (keystream key ~nonce) work;
    let plain_length = Bytes.length work - overhead in
    let plaintext = Bytes.sub work 0 plain_length in
    let seen_tag = Bytes.get_int64_be work plain_length in
    if Int64.equal seen_tag (tag key ~nonce plaintext) then Ok plaintext
    else Error "integrity check failed"
  end
