(** Control-message payloads.

    Control messages are ordinary multi-modal transport packets whose
    header kind is not [Data]; their payload is one of the codecs
    below.  The paper names three in-band control interactions: NAKs
    toward an explicit retransmission source (§ 5.4), deadline-exceeded
    notifications toward the configured address (§ 5.3), and
    back-pressure relayed to the sender (§ 5.1).  Buffer advertisements
    support the § 6 resource-map challenge. *)

open Mmt_util
open Mmt_frame

module Nak : sig
  type t = {
    requester : Addr.Ip.t;  (** where recovered packets should be sent *)
    ranges : (int * int) list;  (** inclusive [first, last] sequence ranges *)
  }

  val encode : t -> bytes
  val decode : bytes -> (t, string) result
  val sequence_count : t -> int
  (** Total sequences covered by [ranges]. *)

  val ranges_of_sorted : int list -> (int * int) list
  (** Coalesce a sorted, duplicate-free sequence list into inclusive
      ranges. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Deadline_exceeded : sig
  type t = {
    sequence : int;  (** 0xFFFFFFFF when the stream is unsequenced *)
    deadline : Units.Time.t;
    observed : Units.Time.t;  (** arrival time at the checking element *)
  }

  val encode : t -> bytes
  val decode : bytes -> (t, string) result
  val lateness : t -> Units.Time.t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Backpressure : sig
  type t = {
    origin : Addr.Ip.t;  (** the element that observed congestion *)
    advised_pace_mbps : int;
    severity : int;  (** 0 (clear) .. 255 (stop) *)
  }

  val encode : t -> bytes
  val decode : bytes -> (t, string) result
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Buffer_advert : sig
  type t = {
    buffer : Addr.Ip.t;
    capacity : Units.Size.t;
    rtt_hint : Units.Time.t;  (** advertised RTT from the advertising segment *)
  }

  val encode : t -> bytes
  val decode : bytes -> (t, string) result
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
