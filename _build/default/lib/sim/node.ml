type t = {
  name : string;
  mutable handler : Packet.t -> unit;
  mutable received : int;
}

let create ~name = { name; handler = ignore; received = 0 }
let name t = t.name
let set_handler t handler = t.handler <- handler

let handle t packet =
  t.received <- t.received + 1;
  t.handler packet

let received t = t.received
