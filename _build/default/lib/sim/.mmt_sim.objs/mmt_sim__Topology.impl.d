lib/sim/topology.ml: Engine Hashtbl Link List Node Option Trace
