lib/sim/node.mli: Packet
