lib/sim/trace.ml: Buffer Engine Link List Mmt_util Packet Printf Queue Units
