lib/sim/loss.mli: Mmt_util Rng
