lib/sim/engine.mli: Mmt_util Units
