lib/sim/link.ml: Engine Loss Mmt_util Packet Queue_model Units
