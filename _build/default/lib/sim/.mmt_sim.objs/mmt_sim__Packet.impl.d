lib/sim/packet.ml: Bytes Format Mmt_util Units
