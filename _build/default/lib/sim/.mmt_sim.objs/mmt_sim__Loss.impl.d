lib/sim/loss.ml: Mmt_util Printf Rng
