lib/sim/engine.ml: Array Mmt_util Units
