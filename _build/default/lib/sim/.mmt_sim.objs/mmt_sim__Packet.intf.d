lib/sim/packet.mli: Format Mmt_util Units
