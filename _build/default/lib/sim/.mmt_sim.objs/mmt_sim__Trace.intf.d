lib/sim/trace.mli: Engine Link Mmt_util Packet Units
