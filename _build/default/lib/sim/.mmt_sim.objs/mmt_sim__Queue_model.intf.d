lib/sim/queue_model.mli: Mmt_util Packet Units
