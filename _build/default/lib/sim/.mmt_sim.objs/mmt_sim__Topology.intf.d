lib/sim/topology.mli: Engine Link Loss Mmt_util Node Queue_model Trace Units
