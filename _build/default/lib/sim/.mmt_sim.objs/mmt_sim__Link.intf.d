lib/sim/link.mli: Engine Loss Mmt_util Packet Queue_model Units
