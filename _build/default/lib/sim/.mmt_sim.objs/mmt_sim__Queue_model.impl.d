lib/sim/queue_model.ml: Array Bytes Mmt_util Packet Printf Queue Units
