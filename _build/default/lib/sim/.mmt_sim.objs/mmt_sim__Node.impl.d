lib/sim/node.ml: Packet
