(** Network nodes: named packet handlers.

    A node is anything that terminates a link — a sensor, a DTN, a
    switch element, a researcher's workstation.  Behaviour lives in the
    handler; the transport and in-network layers install theirs. *)

type t

val create : name:string -> t
(** A fresh node whose initial handler silently counts and discards. *)

val name : t -> string
val set_handler : t -> (Packet.t -> unit) -> unit
val handle : t -> Packet.t -> unit
(** Deliver a packet to the current handler. *)

val received : t -> int
(** Packets handled so far (including discarded ones). *)
