open Mmt_util

type event = {
  at : Units.Time.t;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

(* Array-backed binary min-heap ordered by (at, seq). *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : Units.Time.t;
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
}

let dummy_event =
  { at = Units.Time.zero; seq = -1; fn = ignore; cancelled = true }

let create () =
  {
    heap = Array.make 64 dummy_event;
    size = 0;
    clock = Units.Time.zero;
    next_seq = 0;
    live = 0;
    processed = 0;
  }

let now t = t.clock

let earlier a b =
  let c = Units.Time.compare a.at b.at in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t event =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy_event in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- event;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_event;
  if t.size > 0 then sift_down t 0;
  top

let schedule t ~at fn =
  let at = Units.Time.max at t.clock in
  let event = { at; seq = t.next_seq; fn; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  push t event;
  event

let schedule_after t ~delay fn = schedule t ~at:(Units.Time.add t.clock delay) fn

let cancel handle = handle.cancelled <- true

let pending t =
  (* [live] over-counts cancelled-but-queued events; recount lazily. *)
  let count = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr count
  done;
  t.live <- !count;
  !count

let processed t = t.processed

let step t =
  let rec next () =
    if t.size = 0 then false
    else begin
      let event = pop t in
      if event.cancelled then next ()
      else begin
        t.clock <- event.at;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        event.fn ();
        true
      end
    end
  in
  next ()

let run ?until t =
  let fits event =
    match until with
    | None -> true
    | Some limit -> Units.Time.(event.at <= limit)
  in
  let rec loop () =
    if t.size > 0 then begin
      let top = t.heap.(0) in
      if top.cancelled then begin
        ignore (pop t);
        loop ()
      end
      else if fits top then begin
        ignore (step t);
        loop ()
      end
    end
  in
  loop ();
  match until with
  | Some limit when Units.Time.(t.clock < limit) -> t.clock <- limit
  | _ -> ()
