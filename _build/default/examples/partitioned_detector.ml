(* Instrument partitioning and event building (Req 8, Req 9): DUNE's
   four detector slices stream simultaneously — each fragment's
   experiment identifier carries its slice — and the analysis facility
   reassembles complete physics events from the four per-slice
   fragments sharing a trigger number.

   Run with: dune exec examples/partitioned_detector.exe *)

open Mmt_util
open Mmt_frame

let slices = [ 0; 1; 2; 3 ]
let triggers = 300
let detector_ip = Addr.Ip.of_octets 10 3 0 1
let facility_ip = Addr.Ip.of_octets 10 3 0 2

let () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let detector = Mmt_sim.Topology.add_node topo ~name:"detector" in
  let facility = Mmt_sim.Topology.add_node topo ~name:"facility" in
  let daq_link =
    Mmt_sim.Topology.connect topo ~src:detector ~dst:facility
      ~rate:(Units.Rate.gbps 100.) ~propagation:(Units.Time.us 10.) ()
  in
  let router = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send daq_link) () in
  let env = Mmt_pilot.Router.env router ~engine ~fresh_id ~local_ip:detector_ip in
  let dune_experiment = Mmt_daq.Experiment.find Mmt_daq.Experiment.Dune in

  (* One mode-0 sender per detector slice — "DUNE's four detectors each
     have specific headers but they all share a top-level DAQ header". *)
  let sender_for _slice =
    Mmt.Sender.create ~env
      {
        Mmt.Sender.experiment = dune_experiment.Mmt_daq.Experiment.id;
        destination = facility_ip;
        encap = Mmt.Encap.Raw;
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  let senders = List.map (fun slice -> (slice, sender_for slice)) slices in

  (* The event builder at the facility: an event is complete when every
     slice's fragment for a trigger has arrived. *)
  let builder =
    Mmt_daq.Event_builder.create ~slices ~timeout:(Units.Time.ms 50.)
  in
  let complete_events = ref [] in
  let per_slice = Hashtbl.create 8 in
  Mmt_sim.Node.set_handler facility (fun packet ->
      match Mmt.Encap.strip (Mmt_sim.Packet.frame packet) with
      | Error _ -> ()
      | Ok (_encap, mmt_frame) -> (
          match Mmt.Header.decode_bytes mmt_frame with
          | Error _ -> ()
          | Ok header -> (
              let payload =
                Bytes.sub mmt_frame (Mmt.Header.size header)
                  (Bytes.length mmt_frame - Mmt.Header.size header)
              in
              match Mmt_daq.Fragment.decode payload with
              | Error _ -> ()
              | Ok fragment ->
                  let slice = Mmt.Experiment_id.slice fragment.Mmt_daq.Fragment.experiment in
                  Hashtbl.replace per_slice slice
                    (1 + Option.value ~default:0 (Hashtbl.find_opt per_slice slice));
                  (match
                     Mmt_daq.Event_builder.add builder
                       ~now:(Mmt_sim.Engine.now engine) fragment
                   with
                  | Some event -> complete_events := event :: !complete_events
                  | None -> ()))));

  (* Each slice digitizes the same trigger cadence; per-slice LArTPC
     waveform payloads differ (different wires saw different charge). *)
  let lartpc =
    { Mmt_daq.Lartpc.iceberg with Mmt_daq.Lartpc.channels = 8; samples_per_channel = 64 }
  in
  let rng = Rng.create ~seed:99L in
  let trigger_gap = Units.Time.us 50. in
  List.iter
    (fun (slice, sender) ->
      let slice_rng = Rng.split rng in
      for trigger = 0 to triggers - 1 do
        ignore
          (Mmt_sim.Engine.schedule engine
             ~at:(Units.Time.scale trigger_gap (float_of_int trigger))
             (fun () ->
               let window =
                 Mmt_daq.Lartpc.generate_window lartpc slice_rng
                   ~activity:Mmt_daq.Lartpc.Cosmic
               in
               let fragment =
                 {
                   Mmt_daq.Fragment.run = 5;
                   trigger;
                   timestamp = Mmt_sim.Engine.now engine;
                   experiment =
                     Mmt.Experiment_id.with_slice dune_experiment.Mmt_daq.Experiment.id
                       slice;
                   detector =
                     Mmt_daq.Fragment.Wib_ethernet
                       {
                         crate = 1;
                         slot = slice;
                         fiber = 1;
                         first_channel = 0;
                         channel_count = lartpc.Mmt_daq.Lartpc.channels;
                       };
                   payload = Mmt_daq.Lartpc.serialize_window window;
                 }
               in
               Mmt.Sender.send sender (Mmt_daq.Fragment.encode fragment)))
      done)
    senders;
  Mmt_sim.Engine.run engine;

  print_endline "Partitioned detector -> event builder (Req 8 / Req 9)";
  print_endline "-------------------------------------------------------";
  List.iter
    (fun slice ->
      Printf.printf "slice %d fragments received: %d\n" slice
        (Option.value ~default:0 (Hashtbl.find_opt per_slice slice)))
    slices;
  let stats = Mmt_daq.Event_builder.stats builder in
  Printf.printf "\ncomplete events assembled : %d / %d\n" stats.Mmt_daq.Event_builder.complete
    triggers;
  Printf.printf "incomplete (timed out)    : %d\n" stats.Mmt_daq.Event_builder.timed_out;
  (match !complete_events with
  | event :: _ ->
      let build_time =
        Units.Time.diff event.Mmt_daq.Event_builder.completed_at
          event.Mmt_daq.Event_builder.opened_at
      in
      Printf.printf "sample event: run %d trigger %d, %d fragments, built in %s\n"
        event.Mmt_daq.Event_builder.run event.Mmt_daq.Event_builder.trigger
        (List.length event.Mmt_daq.Event_builder.fragments)
        (Units.Time.to_string build_time)
  | [] -> ());
  if stats.Mmt_daq.Event_builder.complete = triggers then
    print_endline "\nevery trigger produced a complete four-slice event."
