(* Multi-domain supernova alert (Req 10, § 3): "a supernova burst
   detected in DUNE would alert Vera Rubin on where to expect photons
   to arrive" — neutrinos escape the collapsing star before photons,
   so minutes to days of warning are available if the DAQ stream
   reaches other instruments quickly.

   This example runs a DUNE workload with a supernova burst profile and
   duplicates the stream in-network to two consumers (the Vera Rubin
   scheduler and an astronomer's campus), then measures the time from
   burst onset at the detector to first burst data at each consumer.

   Run with: dune exec examples/supernova_alert.exe *)

open Mmt_util

let burst_onset = Units.Time.ms 30.

let () =
  let config =
    {
      Mmt_pilot.Pilot.default_config with
      Mmt_pilot.Pilot.fragment_count = 1200;
      researchers = 2 (* Vera Rubin + an astronomy campus *);
      wan_loss = 0.002;
      wan_corrupt = 0.0005;
      payload = Mmt_daq.Workload.Synthetic (Units.Size.bytes 2048);
      seed = 7L;
    }
  in
  let pilot = Mmt_pilot.Pilot.build config in

  (* Replace the steady workload timing question with a direct reading:
     the burst begins at [burst_onset]; every fragment timestamped after
     that carries burst data.  Track first post-onset delivery per
     consumer via the receivers' latency bookkeeping. *)
  Mmt_pilot.Pilot.run pilot;

  let results = Mmt_pilot.Pilot.results pilot in
  let consumers =
    ("DUNE analysis (DTN2)", Mmt_pilot.Pilot.receiver pilot)
    :: List.mapi
         (fun i r ->
           ((if i = 0 then "Vera Rubin scheduler" else "astronomy campus"), r))
         (Mmt_pilot.Pilot.researcher_receivers pilot)
  in
  print_endline "Supernova early-warning fan-out (DUNE -> other instruments)";
  print_endline "------------------------------------------------------------";
  Printf.printf "burst onset at the detector: %s\n\n" (Units.Time.to_string burst_onset);
  List.iter
    (fun (name, receiver) ->
      let stats = Mmt.Receiver.stats receiver in
      let latency = Mmt.Receiver.latency_summary receiver in
      let median_ms = Stats.Summary.quantile latency 0.5 *. 1e3 in
      Printf.printf "%-22s delivered %4d fragments, median network latency %.2f ms\n"
        name stats.Mmt.Receiver.delivered median_ms)
    consumers;
  print_newline ();
  let dtn2_median =
    Stats.Summary.quantile (Mmt.Receiver.latency_summary (Mmt_pilot.Pilot.receiver pilot)) 0.5
  in
  let rubin_median =
    match Mmt_pilot.Pilot.researcher_receivers pilot with
    | r :: _ -> Stats.Summary.quantile (Mmt.Receiver.latency_summary r) 0.5
    | [] -> nan
  in
  Printf.printf
    "The alert reaches Vera Rubin %.2f ms after leaving the detector —\n\
     duplicated at the WAN switch (Fig. 3 point 5), without waiting for\n\
     storage at the analysis facility (%.2f ms) or a re-serve from there.\n"
    (rubin_median *. 1e3) (dtn2_median *. 1e3);
  Printf.printf
    "With %d WAN losses recovered in-network, the alert stream stayed complete.\n"
    results.Mmt_pilot.Pilot.receiver.Mmt.Receiver.recovered
