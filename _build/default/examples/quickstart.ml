(* Quickstart: stream DUNE-style DAQ fragments through the Fig. 4 pilot
   topology and watch the multi-modal transport recover WAN losses from
   the DTN 1 buffer.

   Run with: dune exec examples/quickstart.exe *)

open Mmt_util

let () =
  (* 1. Configure the pilot: the DUNE workload at a simulator-friendly
     scale, a 13 ms WAN with a little corruption loss — the environment
     of § 5.4. *)
  let config =
    {
      Mmt_pilot.Pilot.default_config with
      Mmt_pilot.Pilot.fragment_count = 1000;
      wan_loss = 0.005;
      (* 0.5% drops *)
      wan_corrupt = 0.001;
      seed = 2024L;
    }
  in

  (* 2. Build and run to quiescence.  The topology is
     sensor -> DTN1 (mode rewriter + retransmission buffer)
            -> Tofino2 (age tracking) -> DTN2 (receiver).  *)
  let pilot = Mmt_pilot.Pilot.build config in
  Mmt_pilot.Pilot.run pilot;

  (* 3. Inspect what happened. *)
  let r = Mmt_pilot.Pilot.results pilot in
  let receiver = r.Mmt_pilot.Pilot.receiver in
  Printf.printf "fragments emitted by the detector : %d\n" r.Mmt_pilot.Pilot.emitted;
  Printf.printf "delivered at the analysis facility: %d\n" receiver.Mmt.Receiver.delivered;
  Printf.printf "WAN losses                        : %d drops + %d corrupted\n"
    (r.Mmt_pilot.Pilot.wan_a.Mmt_sim.Link.loss_drops
    + r.Mmt_pilot.Pilot.wan_b.Mmt_sim.Link.loss_drops)
    (r.Mmt_pilot.Pilot.wan_a.Mmt_sim.Link.corrupted
    + r.Mmt_pilot.Pilot.wan_b.Mmt_sim.Link.corrupted);
  Printf.printf "gaps detected at DTN2             : %d\n"
    receiver.Mmt.Receiver.gaps_detected;
  Printf.printf "recovered via NAK to DTN1's buffer: %d (%d NAKs, %d resends)\n"
    receiver.Mmt.Receiver.recovered receiver.Mmt.Receiver.naks_sent
    r.Mmt_pilot.Pilot.buffer.Mmt.Buffer_host.frames_resent;
  Printf.printf "abandoned                         : %d\n" receiver.Mmt.Receiver.lost;
  Printf.printf "goodput                           : %s\n"
    (Units.Rate.to_string r.Mmt_pilot.Pilot.goodput);
  (match receiver.Mmt.Receiver.completion with
  | Some t ->
      Printf.printf "flow completion                   : %s\n" (Units.Time.to_string t)
  | None -> print_endline "flow did not complete!");
  let latency = Mmt.Receiver.latency_summary (Mmt_pilot.Pilot.receiver pilot) in
  Printf.printf "message latency p50 / p99 / max   : %.2f / %.2f / %.2f ms\n"
    (Stats.Summary.quantile latency 0.5 *. 1e3)
    (Stats.Summary.quantile latency 0.99 *. 1e3)
    (Stats.Summary.max latency *. 1e3);
  if receiver.Mmt.Receiver.delivered = r.Mmt_pilot.Pilot.emitted then
    print_endline "\nevery fragment made it: the shape-shifting worked."
