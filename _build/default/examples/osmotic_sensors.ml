(* Osmotic computing (§ 6, challenge 3): "a large number of distributed
   sensors, instead of a few large instruments.  Sensors lack a DAQ
   network — instead they rely on cell networks and backhaul.  We
   believe that TCP is adequate for these low-volume streams."

   Twelve dispersed sensors (a SAGA-style GPS scintillation array [20])
   push small readings over high-RTT, lossy cell links using the plain
   TCP baseline into an aggregation gateway; the gateway forwards the
   aggregate over the science WAN using the multi-modal transport.
   The integration point is the gateway: low-volume TCP edges, one
   recoverable high-volume MMT core.

   Run with: dune exec examples/osmotic_sensors.exe *)

open Mmt_util
open Mmt_frame

let sensor_count = 12
let readings_per_sensor = 200
let reading_size = 512

let () =
  let engine = Mmt_sim.Engine.create () in
  let topo = Mmt_sim.Topology.create ~engine () in
  let fresh_id () = Mmt_sim.Topology.fresh_packet_id topo in
  let rng = Rng.create ~seed:13L in
  let gateway = Mmt_sim.Topology.add_node topo ~name:"gateway" in
  let facility = Mmt_sim.Topology.add_node topo ~name:"facility" in
  let gateway_ip = Addr.Ip.of_octets 10 5 0 1 in
  let facility_ip = Addr.Ip.of_octets 10 5 0 2 in

  (* Cell edges: 20 Mbps, 60-140 ms RTT, 1% loss — TCP territory. *)
  let sensors =
    List.init sensor_count (fun i ->
        let node = Mmt_sim.Topology.add_node topo ~name:(Printf.sprintf "sensor%d" i) in
        let rtt = Units.Time.ms (60. +. float_of_int (i * 7)) in
        let half = Units.Time.scale rtt 0.5 in
        let cell_rng = Rng.split rng in
        let up =
          Mmt_sim.Topology.connect topo ~src:node ~dst:gateway
            ~rate:(Units.Rate.mbps 20.) ~propagation:half
            ~loss:(Mmt_sim.Loss.bernoulli ~drop:0.01 ~corrupt:0. ~rng:cell_rng)
            ()
        in
        let down =
          Mmt_sim.Topology.connect topo ~src:gateway ~dst:node
            ~rate:(Units.Rate.mbps 20.) ~propagation:half ()
        in
        (i, node, up, down))
  in

  (* The science-WAN core: gateway -> facility over the multi-modal
     transport, with the gateway itself hosting the retransmission
     buffer (it is the first line of storage, like DTN 1). *)
  let wan_rng = Rng.split rng in
  let wan =
    Mmt_sim.Topology.connect topo ~src:gateway ~dst:facility
      ~rate:(Units.Rate.gbps 10.) ~propagation:(Units.Time.ms 10.)
      ~loss:(Mmt_sim.Loss.bernoulli ~drop:0.003 ~corrupt:0. ~rng:wan_rng)
      ()
  in
  let wan_back =
    Mmt_sim.Topology.connect topo ~src:facility ~dst:gateway
      ~rate:(Units.Rate.gbps 10.) ~propagation:(Units.Time.ms 10.) ()
  in

  (* TCP endpoints per sensor; the gateway demuxes by port. *)
  let tcp_config = Mmt_tcp.Connection.default_config in
  let connections =
    List.map
      (fun (i, node, up, down) ->
        let port = i + 1 in
        let received = ref 0 in
        let receiver =
          Mmt_tcp.Connection.create ~engine ~fresh_id ~config:tcp_config ~port
            ~tx:(Mmt_sim.Link.send down)
            ~deliver:(fun n -> received := !received + n)
            ()
        in
        let sender =
          Mmt_tcp.Connection.create ~engine ~fresh_id ~config:tcp_config ~port
            ~tx:(Mmt_sim.Link.send up) ()
        in
        Mmt_sim.Node.set_handler node (Mmt_tcp.Connection.on_packet sender);
        (i, sender, receiver, received))
      sensors
  in

  (* Gateway: feed TCP receivers; aggregate completed readings into MMT
     fragments toward the facility. *)
  let router = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send wan) () in
  let env_gw = Mmt_pilot.Router.env router ~engine ~fresh_id ~local_ip:gateway_ip in
  let buffer = Mmt.Buffer_host.create ~env:env_gw ~capacity:(Units.Size.mib 64) () in
  let experiment = Mmt.Experiment_id.make ~experiment:20 ~slice:0 in
  let wan_mode =
    Mmt.Mode.make ~name:"osmotic/wan" ~reliable:gateway_ip ~age_budget_us:100_000 ()
  in
  let rewriter =
    Mmt_innet.Mode_rewriter.create ~mode:wan_mode
      ~on_rewrite:(fun ~seq ~born frame ->
        match seq with
        | Some seq -> Mmt.Buffer_host.store buffer ~seq ~born frame
        | None -> ())
      ()
  in
  let rewrite_element = Mmt_innet.Mode_rewriter.element rewriter in
  let mmt_sender =
    Mmt.Sender.create ~env:env_gw
      {
        Mmt.Sender.experiment;
        destination = facility_ip;
        encap =
          Mmt.Encap.Over_ipv4 { src = gateway_ip; dst = facility_ip; dscp = 0; ttl = 64 };
        deadline_budget = None;
        backpressure_to = None;
        pace = None;
        padding = 0;
      }
  in
  (* Intercept the sender's frames through the rewriter before the WAN
     (the gateway is its own mode-changing element). *)
  let env_gw_send = env_gw.Mmt_runtime.Env.send in
  let send_via_rewriter dst packet =
    match rewrite_element.Mmt_innet.Element.process ~now:(Mmt_sim.Engine.now engine) packet with
    | Mmt_innet.Element.Forward p -> env_gw_send dst p
    | Mmt_innet.Element.Replicate ps -> List.iter (env_gw_send dst) ps
    | Mmt_innet.Element.Discard _ -> ()
  in
  let env_rewriting = { env_gw with Mmt_runtime.Env.send = send_via_rewriter } in
  let mmt_sender = Mmt.Sender.create ~env:env_rewriting (Mmt.Sender.config mmt_sender) in

  let aggregated = ref 0 in
  Mmt_sim.Node.set_handler gateway (fun packet ->
      (* NAKs from the facility terminate at the gateway's buffer. *)
      let is_nak =
        match Mmt.Encap.locate (Mmt_sim.Packet.frame packet) with
        | Ok (_encap, off) -> (
            match Mmt.Header.decode_bytes ~off (Mmt_sim.Packet.frame packet) with
            | Ok { Mmt.Header.kind = Mmt.Feature.Kind.Nak; _ } -> true
            | _ -> false)
        | Error _ -> false
      in
      if is_nak then Mmt.Buffer_host.on_packet buffer packet
      else
        List.iter (fun (_, _, receiver, _) -> Mmt_tcp.Connection.on_packet receiver packet)
          connections);

  (* Every completed sensor reading becomes one aggregated fragment. *)
  let forward_reading sensor_id =
    incr aggregated;
    let fragment =
      {
        Mmt_daq.Fragment.run = 1;
        trigger = !aggregated;
        timestamp = Mmt_sim.Engine.now engine;
        experiment;
        detector =
          Mmt_daq.Fragment.Beam_instrument
            { device = sensor_id; sample_rate_khz = 50; adc_bits = 16 };
        payload = Bytes.make reading_size 's';
      }
    in
    Mmt.Sender.send mmt_sender (Mmt_daq.Fragment.encode fragment)
  in
  List.iter
    (fun (i, sender, _, received) ->
      (* Pace readings out of each sensor; count completions at the
         gateway by watching delivered byte boundaries. *)
      let boundary = ref reading_size in
      let watcher () =
        while !received >= !boundary do
          forward_reading i;
          boundary := !boundary + reading_size
        done
      in
      for r = 0 to readings_per_sensor - 1 do
        ignore
          (Mmt_sim.Engine.schedule engine
             ~at:(Units.Time.scale (Units.Time.ms 2.) (float_of_int r))
             (fun () ->
               Mmt_tcp.Connection.write sender reading_size;
               watcher ()))
      done;
      (* Poll for late deliveries as cell losses are retransmitted. *)
      for tick = 1 to 100 do
        ignore
          (Mmt_sim.Engine.schedule engine
             ~at:(Units.Time.scale (Units.Time.ms 25.) (float_of_int tick))
             watcher)
      done)
    connections;

  (* Facility receiver. *)
  let router_fac = Mmt_pilot.Router.create ~default:(Mmt_sim.Link.send wan_back) () in
  let env_fac = Mmt_pilot.Router.env router_fac ~engine ~fresh_id ~local_ip:facility_ip in
  let receiver =
    Mmt.Receiver.create ~env:env_fac
      {
        Mmt.Receiver.experiment;
        nak_delay = Units.Time.ms 2.;
        nak_retry_timeout = Units.Time.ms 40.;
        max_nak_retries = 8;
        expected_total = None;
      }
      ~deliver:(fun _ _ -> ())
  in
  Mmt_sim.Node.set_handler facility (Mmt.Receiver.on_packet receiver);

  Mmt_sim.Engine.run ~until:(Units.Time.seconds 30.) engine;

  print_endline "Osmotic sensors (§ 6 challenge 3): TCP edges, multi-modal core";
  print_endline "----------------------------------------------------------------";
  let total_readings = sensor_count * readings_per_sensor in
  let tcp_retx =
    List.fold_left
      (fun acc (_, sender, _, _) ->
        acc + (Mmt_tcp.Connection.stats sender).Mmt_tcp.Connection.retransmits)
      0 connections
  in
  Printf.printf "sensor readings sent over cell TCP : %d (%d TCP retransmissions)\n"
    total_readings tcp_retx;
  Printf.printf "readings aggregated at the gateway : %d\n" !aggregated;
  let stats = Mmt.Receiver.stats receiver in
  Printf.printf "fragments delivered at the facility: %d (%d recovered from the \
                 gateway buffer, %d lost)\n"
    stats.Mmt.Receiver.delivered stats.Mmt.Receiver.recovered stats.Mmt.Receiver.lost;
  if !aggregated = total_readings && stats.Mmt.Receiver.delivered = total_readings then
    print_endline "\nevery dispersed reading crossed both worlds intact."
