examples/vera_rubin_nightly.ml: Addr Bytes Mmt Mmt_daq Mmt_frame Mmt_pilot Mmt_sim Mmt_util Printf Units
