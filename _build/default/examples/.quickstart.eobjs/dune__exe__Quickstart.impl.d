examples/quickstart.ml: Mmt Mmt_pilot Mmt_sim Mmt_util Printf Stats Units
