examples/quickstart.mli:
