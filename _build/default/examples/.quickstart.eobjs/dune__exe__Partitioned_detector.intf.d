examples/partitioned_detector.mli:
