examples/supernova_alert.mli:
