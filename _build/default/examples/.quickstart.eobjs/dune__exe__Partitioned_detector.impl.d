examples/partitioned_detector.ml: Addr Bytes Hashtbl List Mmt Mmt_daq Mmt_frame Mmt_pilot Mmt_sim Mmt_util Option Printf Rng Units
