examples/osmotic_sensors.ml: Addr Bytes List Mmt Mmt_daq Mmt_frame Mmt_innet Mmt_pilot Mmt_runtime Mmt_sim Mmt_tcp Mmt_util Printf Rng Units
