examples/supernova_alert.ml: List Mmt Mmt_daq Mmt_pilot Mmt_util Printf Stats Units
