examples/osmotic_sensors.mli:
