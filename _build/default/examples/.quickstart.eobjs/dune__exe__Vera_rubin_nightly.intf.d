examples/vera_rubin_nightly.mli:
